package core

// Batch-at-a-time data plane tests: Queue.PushBatch unit semantics, and the
// equivalence property the whole design rests on — a batched, vectorized
// execution (BatchGrain > 1, operators running OnBatch) is indistinguishable
// from the per-tuple protocol (BatchGrain = 1 with NoVectorize, every tuple
// through OnTuple) in everything but speed: identical result multisets,
// identical per-operator activation/emission accounting (tuples, never
// batches), identical per-worker activation counts when the allocation is
// deterministic, and identical cancellation behavior mid-batch. The join
// matrix also covers the fallback seam: NestedLoop joins have no OnBatch,
// so their runs take the per-tuple dispatch path while the filters, stores
// and transmits around them vectorize.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dbs3/internal/esql"
	"dbs3/internal/lera"
	"dbs3/internal/partition"
	"dbs3/internal/relation"
	"dbs3/internal/workload"
)

// --- Queue.PushBatch unit tests --------------------------------------------

func TestQueuePushBatchFIFOAndReuse(t *testing.T) {
	q := NewQueue(16)
	batch := make([]Activation, 0, 5)
	for i := int64(0); i < 5; i++ {
		batch = append(batch, tupleAct(i))
	}
	q.PushBatch(batch)
	// The queue copied the activations: clobbering the caller's slice must
	// not disturb what was pushed.
	for i := range batch {
		batch[i] = tupleAct(99)
	}
	got := q.popBatch(10, nil)
	if len(got) != 5 {
		t.Fatalf("popped %d, want 5", len(got))
	}
	for i, a := range got {
		if a.Tuple[0].AsInt() != int64(i) {
			t.Fatalf("order/copy violated at %d: %v", i, a.Tuple)
		}
	}
}

func TestQueuePushBatchLargerThanCapacity(t *testing.T) {
	// A batch bigger than the queue must fill, wait for drains, and deliver
	// everything in order — the backpressure protocol at batch granularity.
	q := NewQueue(4)
	const n = 50
	batch := make([]Activation, 0, n)
	for i := int64(0); i < n; i++ {
		batch = append(batch, tupleAct(i))
	}
	done := make(chan struct{})
	go func() {
		q.PushBatch(batch)
		close(done)
	}()
	next := int64(0)
	deadline := time.After(5 * time.Second)
	for next < n {
		for _, a := range q.popBatch(3, nil) {
			if a.Tuple[0].AsInt() != next {
				t.Errorf("out of order: got %v, want %d", a.Tuple, next)
			}
			next++
		}
		select {
		case <-deadline:
			t.Fatalf("drained only %d of %d", next, n)
		default:
		}
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("PushBatch never returned after full drain")
	}
}

func TestQueuePushBatchNotifiesBeforeBlocking(t *testing.T) {
	// The partial fill must wake consumers before the producer blocks for
	// the remainder, or a full queue with sleeping consumers deadlocks.
	q := NewQueue(2)
	woken := make(chan struct{}, 10)
	q.onPush = func() { woken <- struct{}{} }
	batch := []Activation{tupleAct(1), tupleAct(2), tupleAct(3)}
	go q.PushBatch(batch)
	select {
	case <-woken:
	case <-time.After(time.Second):
		t.Fatal("no consumer wake for the delivered part of a blocked batch")
	}
	if got := q.popBatch(10, nil); len(got) != 2 {
		t.Fatalf("delivered part = %d activations, want 2", len(got))
	}
}

func TestQueuePushBatchAbortDrops(t *testing.T) {
	q := NewQueue(2)
	q.Push(tupleAct(1))
	q.Push(tupleAct(2))
	done := make(chan struct{})
	go func() {
		q.PushBatch([]Activation{tupleAct(3), tupleAct(4)})
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Abort()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Abort did not release a blocked PushBatch")
	}
	q.PushBatch([]Activation{tupleAct(5)}) // dropped, must not block or panic
	if q.Len() != 2 {
		t.Errorf("aborted queue grew: len = %d", q.Len())
	}
}

func TestQueuePushBatchClosedPanics(t *testing.T) {
	q := NewQueue(4)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Error("PushBatch to closed queue should panic")
		}
	}()
	q.PushBatch([]Activation{tupleAct(1)})
}

func TestBatchGrainDefaultsAndClamp(t *testing.T) {
	if o := (Options{}).withDefaults(); o.BatchGrain != DefaultBatchGrain {
		t.Errorf("default grain = %d, want %d", o.BatchGrain, DefaultBatchGrain)
	}
	if o := (Options{BatchGrain: -3}).withDefaults(); o.BatchGrain != 1 {
		t.Errorf("negative grain = %d, want 1", o.BatchGrain)
	}
	// The grain is a per-destination buffer capacity reachable from wire
	// options; it must clamp to the queue capacity, not be trusted.
	if o := (Options{BatchGrain: 1 << 30}).withDefaults(); o.BatchGrain != o.QueueCap {
		t.Errorf("huge grain = %d, want clamp to queue cap %d", o.BatchGrain, o.QueueCap)
	}
	if o := (Options{BatchGrain: 1 << 30, QueueCap: 8}).withDefaults(); o.BatchGrain != 8 {
		t.Errorf("grain = %d, want clamp to explicit queue cap 8", o.BatchGrain)
	}
}

// --- Batch-vs-tuple equivalence property -----------------------------------

// grainsUnderTest pits the per-tuple protocol against a deliberately awkward
// grain (forcing partial flushes at trigger boundaries) and the default.
var grainsUnderTest = []int{7, DefaultBatchGrain}

// vectorGrains drives the vectorized path against the per-tuple reference:
// grain 1 (runs of one tuple — the degenerate OnBatch), an awkward odd
// grain, and the default.
var vectorGrains = []int{1, 7, DefaultBatchGrain}

// statsSnapshot flattens the per-node counters that must not depend on the
// transport grain.
func statsSnapshot(res *Result) map[int][3]int64 {
	out := make(map[int][3]int64, len(res.Stats))
	for id, st := range res.Stats {
		out[id] = [3]int64{st.Activations.Load(), st.Emitted.Load(), st.Setups.Load()}
	}
	return out
}

func TestBatchGrainEquivalenceJoins(t *testing.T) {
	for _, theta := range []float64{0, 1} { // flat and Zipf-skewed placement
		db, err := workload.NewJoinDB(2000, 200, 8, theta)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []lera.JoinAlgo{lera.NestedLoop, lera.HashJoin, lera.TempIndex} {
			for _, assoc := range []bool{false, true} {
				for _, trigGrain := range []int{0, 3} { // whole-fragment and partial triggers
					name := fmt.Sprintf("theta=%v/algo=%v/assoc=%v/grain=%d", theta, algo, assoc, trigGrain)
					// Reference: the strict per-tuple protocol — grain 1 AND
					// vectorization off, so every tuple goes through OnTuple.
					base := Options{Threads: 4, TriggerGrain: trigGrain, BatchGrain: 1, NoVectorize: true}
					ref := executeJoin(t, db, assoc, algo, base)
					refRel, err := ref.Relation("Res")
					if err != nil {
						t.Fatal(err)
					}
					refStats := statsSnapshot(ref)
					if err := db.VerifyJoinResult(ref.Outputs["Res"]); err != nil {
						t.Fatalf("%s: per-tuple reference wrong: %v", name, err)
					}
					for _, bg := range vectorGrains {
						opts := base
						opts.BatchGrain = bg
						opts.NoVectorize = false
						got := executeJoin(t, db, assoc, algo, opts)
						gotRel, err := got.Relation("Res")
						if err != nil {
							t.Fatal(err)
						}
						if !gotRel.EqualMultiset(refRel) {
							t.Errorf("%s: vectorized grain %d result differs from per-tuple reference", name, bg)
						}
						if gs := statsSnapshot(got); !statsEqual(gs, refStats) {
							t.Errorf("%s: vectorized grain %d accounting %v, per-tuple %v — activations must count tuples, not batches",
								name, bg, gs, refStats)
						}
					}
				}
			}
		}
	}
}

func statsEqual(a, b map[int][3]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for id, v := range a {
		if b[id] != v {
			return false
		}
	}
	return true
}

// wisconsinPlan compiles an ESQL statement against a generated Wisconsin
// relation partitioned on the given key — hash-partitioning on a
// low-cardinality column like "four" leaves most fragments empty, the
// placement-skew shape the consumption strategies exist for.
func wisconsinPlan(t *testing.T, sql, partKey string, card, degree int) (*lera.Plan, DB) {
	t.Helper()
	r := relation.Wisconsin("wisc", card, 42)
	h, err := partition.NewHash(r.Schema, []string{partKey}, degree)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Partition(r, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	resolver := lera.MapResolver{"wisc": {Schema: p.Schema, Degree: degree, FragSizes: p.FragmentSizes(), Part: h}}
	c := &esql.Compiler{Resolver: resolver, JoinAlgo: lera.HashJoin}
	plan, _, err := c.Compile(sql)
	if err != nil {
		t.Fatal(err)
	}
	return plan, DB{"wisc": p}
}

func TestBatchGrainEquivalenceAggregate(t *testing.T) {
	for _, partKey := range []string{"unique2", "four"} { // flat and skewed placement
		for _, sql := range []string{
			"SELECT ten, COUNT(*) FROM wisc GROUP BY ten",
			"SELECT four, SUM(unique1) FROM wisc GROUP BY four",
			"SELECT onePercent, MAX(unique2) FROM wisc WHERE unique1 < 3000 GROUP BY onePercent",
		} {
			plan, db := wisconsinPlan(t, sql, partKey, 4000, 8)
			run := func(bg int, noVec bool) (*relation.Relation, map[int][3]int64) {
				res, err := Execute(plan, db, Options{Threads: 4, BatchGrain: bg, NoVectorize: noVec})
				if err != nil {
					t.Fatalf("part=%s sql=%q grain=%d: %v", partKey, sql, bg, err)
				}
				rel, err := res.Relation(esql.OutputName)
				if err != nil {
					t.Fatal(err)
				}
				return rel, statsSnapshot(res)
			}
			refRel, refStats := run(1, true) // strict per-tuple reference
			if refRel.Cardinality() == 0 {
				t.Fatalf("part=%s sql=%q: empty reference result", partKey, sql)
			}
			for _, bg := range vectorGrains {
				gotRel, gotStats := run(bg, false)
				if !gotRel.EqualMultiset(refRel) {
					t.Errorf("part=%s sql=%q: vectorized grain %d result differs from per-tuple reference", partKey, sql, bg)
				}
				if !statsEqual(gotStats, refStats) {
					t.Errorf("part=%s sql=%q: vectorized grain %d accounting %v, per-tuple %v", partKey, sql, bg, gotStats, refStats)
				}
			}
		}
	}
}

// TestBatchGrainPerWorkerActivationCounts pins the strongest accounting
// claim: per-worker activation counts (OpStats.WorkerActivations) are
// identical across batch grains wherever they are deterministic — every
// single-worker pool — and their per-node sums are identical everywhere
// (multi-worker pools interleave nondeterministically at any grain). The
// transport batches, the accounting never does.
func TestBatchGrainPerWorkerActivationCounts(t *testing.T) {
	db, err := workload.NewJoinDB(1500, 150, 6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.AssocJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	run := func(bg int) (map[int][]int64, Allocation) {
		res, err := Execute(plan, db.Relations(), Options{Threads: len(plan.Nodes), BatchGrain: bg})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[int][]int64)
		for id := range res.Stats {
			out[id] = res.Stats[id].WorkerActivations()
		}
		return out, res.Alloc
	}
	sum := func(ws []int64) int64 {
		var s int64
		for _, w := range ws {
			s += w
		}
		return s
	}
	ref, refAlloc := run(1)
	singleWorkerNodes := 0
	for _, n := range refAlloc.Node {
		if n == 1 {
			singleWorkerNodes++
		}
	}
	if singleWorkerNodes == 0 {
		t.Fatalf("allocation %v has no single-worker pool; the deterministic check needs one", refAlloc.Node)
	}
	for _, bg := range grainsUnderTest {
		got, gotAlloc := run(bg)
		for id, want := range ref {
			g := got[id]
			if len(g) != len(want) {
				t.Fatalf("node %d: worker count %d vs %d", id, len(g), len(want))
			}
			if sum(g) != sum(want) {
				t.Errorf("node %d: grain %d processed %d activations total, grain 1 processed %d",
					id, bg, sum(g), sum(want))
			}
			if refAlloc.Node[id] == 1 && gotAlloc.Node[id] == 1 && g[0] != want[0] {
				t.Errorf("node %d (single worker): grain %d processed %d activations, grain 1 processed %d",
					id, bg, g[0], want[0])
			}
		}
	}
}

// cancelSink cancels the execution's context after n pushed rows — the
// cursor-close shape, landing mid-batch from the engine's point of view.
type cancelSink struct {
	n      atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (s *cancelSink) Push(relation.Tuple) error {
	if s.n.Add(1) == s.after {
		s.cancel()
	}
	return nil
}

// TestBatchGrainCancellationMidBatch: cancelling while route buffers are in
// flight behaves exactly like the per-tuple protocol — prompt ctx.Err(), no
// goroutine leaks, blocked producers drained — at every grain.
func TestBatchGrainCancellationMidBatch(t *testing.T) {
	db, err := workload.NewJoinDB(30_000, 3_000, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.AssocJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	for _, bg := range []int{1, 7, DefaultBatchGrain} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancelSink{after: 50, cancel: cancel}
		// Tiny queues: producers sit in PushBatch backpressure when the
		// abort lands, proving the batched push drains on Abort.
		_, err := ExecuteContext(ctx, plan, db.Relations(), Options{
			Threads: 4, QueueCap: 2, BatchGrain: bg,
			StreamOutput: "Res", Sink: sink,
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("grain %d: err = %v, want context.Canceled", bg, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before {
			t.Errorf("grain %d: goroutines leaked: %d before, %d after", bg, before, n)
		}
	}
}
