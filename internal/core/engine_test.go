package core

import (
	"testing"
	"testing/quick"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
	"dbs3/internal/workload"
)

func executeJoin(t *testing.T, db *workload.JoinDB, assoc bool, algo lera.JoinAlgo, opts Options) *Result {
	t.Helper()
	var plan *lera.Plan
	var err error
	if assoc {
		plan, err = db.AssocJoinPlan(algo)
	} else {
		plan, err = db.IdealJoinPlan(algo)
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIdealJoinCorrectAcrossConfigs(t *testing.T) {
	db, err := workload.NewJoinDB(2000, 200, 20, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []lera.JoinAlgo{lera.NestedLoop, lera.HashJoin, lera.TempIndex} {
		for _, threads := range []int{1, 4, 33} {
			for _, strat := range []StrategyKind{StrategyRandom, StrategyLPT} {
				res := executeJoin(t, db, false, algo, Options{Threads: threads, Strategy: strat})
				if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
					t.Errorf("algo=%v threads=%d strat=%v: %v", algo, threads, strat, err)
				}
			}
		}
	}
}

func TestAssocJoinCorrectAcrossConfigs(t *testing.T) {
	db, err := workload.NewJoinDB(2000, 200, 20, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []lera.JoinAlgo{lera.NestedLoop, lera.HashJoin, lera.TempIndex} {
		for _, threads := range []int{1, 7, 40} {
			res := executeJoin(t, db, true, algo, Options{Threads: threads})
			if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
				t.Errorf("algo=%v threads=%d: %v", algo, threads, err)
			}
		}
	}
}

func TestJoinResultsIdenticalAcrossConfigurations(t *testing.T) {
	db, err := workload.NewJoinDB(1500, 150, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := executeJoin(t, db, false, lera.NestedLoop, Options{Threads: 1})
	refRel, err := ref.Relation("Res")
	if err != nil {
		t.Fatal(err)
	}
	configs := []struct {
		assoc bool
		algo  lera.JoinAlgo
		opts  Options
	}{
		{false, lera.HashJoin, Options{Threads: 8}},
		{false, lera.TempIndex, Options{Threads: 8, Strategy: StrategyLPT}},
		{true, lera.NestedLoop, Options{Threads: 8}},
		{true, lera.HashJoin, Options{Threads: 3, CacheSize: 1}},
		{true, lera.TempIndex, Options{Threads: 8, QueueCap: 2}}, // tiny queues: exercise backpressure
	}
	for _, c := range configs {
		got := executeJoin(t, db, c.assoc, c.algo, c.opts)
		gotRel, err := got.Relation("Res")
		if err != nil {
			t.Fatal(err)
		}
		// Column names differ between triggered (B.*) and pipelined
		// (probe.*) plans; compare the value multisets.
		if gotRel.Cardinality() != refRel.Cardinality() {
			t.Errorf("assoc=%v algo=%v: %d tuples, want %d", c.assoc, c.algo, gotRel.Cardinality(), refRel.Cardinality())
			continue
		}
		if !gotRel.EqualMultiset(refRel) {
			t.Errorf("assoc=%v algo=%v: result multiset differs from sequential reference", c.assoc, c.algo)
		}
	}
}

func TestDegreeOfParallelismDecoupledFromPartitioning(t *testing.T) {
	// The paper's central claim: threads can exceed or undershoot the
	// degree of partitioning freely.
	db, err := workload.NewJoinDB(600, 60, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 6, 13, 64} {
		res := executeJoin(t, db, false, lera.HashJoin, Options{Threads: threads})
		if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
			t.Errorf("threads=%d (d=6): %v", threads, err)
		}
	}
}

func TestTriggeredActivationCounts(t *testing.T) {
	db, err := workload.NewJoinDB(500, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := executeJoin(t, db, false, lera.HashJoin, Options{Threads: 4})
	// Triggered join: one activation per instance.
	if got := res.Stats[0].Activations.Load(); got != 10 {
		t.Errorf("join activations = %d, want 10", got)
	}
	// Store receives one activation per result tuple.
	if got := res.Stats[1].Activations.Load(); got != 500 {
		t.Errorf("store activations = %d, want 500", got)
	}
	if got := res.Stats[0].Setups.Load(); got != 10 {
		t.Errorf("join setups = %d, want one per instance", got)
	}
}

func TestPipelinedActivationCounts(t *testing.T) {
	db, err := workload.NewJoinDB(500, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := executeJoin(t, db, true, lera.HashJoin, Options{Threads: 4})
	// Transmit: 10 trigger activations; join: one per redistributed tuple.
	if got := res.Stats[0].Activations.Load(); got != 10 {
		t.Errorf("transmit activations = %d, want 10", got)
	}
	if got := res.Stats[1].Activations.Load(); got != 100 {
		t.Errorf("join activations = %d, want 100 (one per B tuple)", got)
	}
	if got := res.Stats[1].Emitted.Load(); got != 500 {
		t.Errorf("join emitted = %d, want 500", got)
	}
}

func TestMultiChainPlanExecutes(t *testing.T) {
	db, err := workload.NewJoinDB(1000, 100, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Chain 1 filters Br (keep even ids) into T1; chain 2 repartitions T1
	// on k and joins with A.
	g := lera.NewGraph()
	f := g.Filter("f", "Br", lera.ColConst{Col: "k", Op: lera.GE, Val: relation.Int(0)})
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "A", []string{"k"}, []string{"k"}, lera.HashJoin)
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, s2)
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{Threads: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["T1"].Cardinality() != 100 {
		t.Errorf("T1 = %d tuples, want all 100 (k >= 0 always)", res.Outputs["T1"].Cardinality())
	}
	if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
		t.Error(err)
	}
}

func TestFilterPlanSelectivity(t *testing.T) {
	db, err := workload.NewJoinDB(1000, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	f := g.Filter("f", "A", lera.ColConst{Col: "id", Op: lera.LT, Val: relation.Int(250)})
	g.ConnectSame(f, g.Store("s", "Sel"))
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Outputs["Sel"]
	if sel.Cardinality() != 250 {
		t.Errorf("selection = %d tuples, want 250", sel.Cardinality())
	}
	idIdx := workload.JoinSchema.MustIndex("id")
	for _, frag := range sel.Fragments {
		for _, tup := range frag {
			if tup[idIdx].AsInt() >= 250 {
				t.Fatalf("tuple %v escaped the filter", tup)
			}
		}
	}
}

func TestAggregatePlanCorrect(t *testing.T) {
	db, err := workload.NewJoinDB(1000, 100, 10, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// COUNT of A grouped by k mod d residue class... group by k itself:
	// count per key must equal A's per-key multiplicity.
	g := lera.NewGraph()
	f := g.Filter("f", "A", nil)
	a := g.Aggregate("agg", []string{"k"}, lera.AggCount, "")
	g.ConnectHash(f, a, []string{"k"})
	g.ConnectSame(a, g.Store("s", "Counts"))
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{Threads: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Build the expected histogram directly.
	kIdx := workload.JoinSchema.MustIndex("k")
	want := make(map[int64]int64)
	for _, frag := range db.A.Fragments {
		for _, tup := range frag {
			want[tup[kIdx].AsInt()]++
		}
	}
	out := res.Outputs["Counts"]
	got := make(map[int64]int64)
	for _, frag := range out.Fragments {
		for _, tup := range frag {
			got[tup[0].AsInt()] = tup[1].AsInt()
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("count[%d] = %d, want %d", k, got[k], w)
		}
	}
}

func TestMapPlanProjects(t *testing.T) {
	db, err := workload.NewJoinDB(100, 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	f := g.Filter("f", "A", nil)
	m := g.Map("m", []string{"id"})
	g.ConnectSame(f, m)
	g.ConnectSame(m, g.Store("s", "Ids"))
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs["Ids"]
	if out.Cardinality() != 100 {
		t.Fatalf("projected %d tuples", out.Cardinality())
	}
	for _, frag := range out.Fragments {
		for _, tup := range frag {
			if len(tup) != 1 {
				t.Fatalf("projection arity = %d", len(tup))
			}
		}
	}
}

func TestExecuteChecksDatabase(t *testing.T) {
	db, err := workload.NewJoinDB(100, 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	// Missing relation.
	rels := db.Relations()
	delete(rels, "B")
	if _, err := Execute(plan, rels, Options{Threads: 2}); err == nil {
		t.Error("missing relation accepted")
	}
	// Degree mismatch.
	db8, _ := workload.NewJoinDB(100, 24, 8, 0)
	rels = db.Relations()
	rels["B"] = db8.B
	if _, err := Execute(plan, rels, Options{Threads: 2}); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestResultRelationMissing(t *testing.T) {
	db, _ := workload.NewJoinDB(100, 20, 4, 0)
	res := executeJoin(t, db, false, lera.HashJoin, Options{Threads: 2})
	if _, err := res.Relation("nope"); err == nil {
		t.Error("missing output accepted")
	}
	if _, err := res.Relation("Res"); err != nil {
		t.Error(err)
	}
}

func TestAutoThreadSelection(t *testing.T) {
	db, _ := workload.NewJoinDB(400, 40, 4, 0)
	plan, err := db.IdealJoinPlan(lera.NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{}) // Threads = 0: scheduler decides
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc.Total < 1 {
		t.Errorf("auto allocation chose %d threads", res.Alloc.Total)
	}
	if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
		t.Error(err)
	}
}

func TestSecondaryPicksUnderSkew(t *testing.T) {
	// With heavy skew and multiple threads, threads whose main queues are
	// cheap must steal from other queues — the mechanism behind the model's
	// load balancing. We check the counter moves on the pipelined join.
	db, err := workload.NewJoinDB(4000, 400, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := executeJoin(t, db, true, lera.NestedLoop, Options{Threads: 8})
	if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
		t.Fatal(err)
	}
	total := res.Stats[1].SecondaryPicks.Load() + res.Stats[0].SecondaryPicks.Load()
	if total == 0 {
		t.Log("no secondary picks observed (acceptable on fast machines, but unusual)")
	}
}

func TestTriggerGrainCorrectAndMoreActivations(t *testing.T) {
	db, err := workload.NewJoinDB(2000, 200, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	// Whole-fragment triggers: 20 activations on the join.
	whole, err := Execute(plan, db.Relations(), Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyJoinResult(whole.Outputs["Res"]); err != nil {
		t.Fatal(err)
	}
	if got := whole.Stats[0].Activations.Load(); got != 20 {
		t.Fatalf("whole-fragment activations = %d, want 20", got)
	}
	// Grain 3 over the probe side (10 tuples per B fragment): ceil(10/3) =
	// 4 partial triggers per instance.
	fine, err := Execute(plan, db.Relations(), Options{Threads: 4, TriggerGrain: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyJoinResult(fine.Outputs["Res"]); err != nil {
		t.Fatal(err)
	}
	if got := fine.Stats[0].Activations.Load(); got != 20*4 {
		t.Errorf("grain-3 activations = %d, want 80", got)
	}
	// Results identical either way.
	a, _ := whole.Relation("Res")
	b, _ := fine.Relation("Res")
	if !a.EqualMultiset(b) {
		t.Error("grain changed the join result")
	}
}

func TestTriggerGrainOnFilter(t *testing.T) {
	db, err := workload.NewJoinDB(1000, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	f := g.Filter("f", "A", lera.ColConst{Col: "id", Op: lera.LT, Val: relation.Int(300)})
	g.ConnectSame(f, g.Store("s", "Sel"))
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{Threads: 3, TriggerGrain: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["Sel"].Cardinality() != 300 {
		t.Errorf("selected %d, want 300", res.Outputs["Sel"].Cardinality())
	}
	// 10 fragments of 100 tuples, grain 7: 10 * ceil(100/7) = 150.
	if got := res.Stats[0].Activations.Load(); got != 150 {
		t.Errorf("activations = %d, want 150", got)
	}
}

func TestTriggerGrainLargerThanFragment(t *testing.T) {
	db, err := workload.NewJoinDB(100, 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{Threads: 2, TriggerGrain: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
		t.Error(err)
	}
	// Grain larger than any fragment: still one activation per instance.
	if got := res.Stats[0].Activations.Load(); got != 4 {
		t.Errorf("activations = %d, want 4", got)
	}
}

// Multi-user execution: several queries run concurrently against the same
// database (relations are immutable during execution), each with a throttled
// allocation; all answers must be exact.
func TestConcurrentQueries(t *testing.T) {
	db, err := workload.NewJoinDB(2000, 200, 20, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rels := db.Relations()
	const users = 6
	errs := make(chan error, users)
	for u := 0; u < users; u++ {
		go func(u int) {
			plan, err := db.IdealJoinPlan(lera.HashJoin)
			if err != nil {
				errs <- err
				return
			}
			res, err := Execute(plan, rels, Options{Utilization: 0.5, Seed: int64(u + 1)})
			if err != nil {
				errs <- err
				return
			}
			errs <- db.VerifyJoinResult(res.Outputs["Res"])
		}(u)
	}
	for u := 0; u < users; u++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

// Dependent-parallel chains (§3): the consumer chain starts only after its
// producer's materialization; results are identical to sequential mode.
func TestConcurrentChainsCorrect(t *testing.T) {
	db, err := workload.NewJoinDB(1000, 100, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	f := g.Filter("f", "Br", nil)
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "A", []string{"k"}, []string{"k"}, lera.HashJoin)
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, s2)
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Execute(plan, db.Relations(), Options{Threads: 6})
	if err != nil {
		t.Fatal(err)
	}
	con, err := Execute(plan, db.Relations(), Options{Threads: 6, ConcurrentChains: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{seq, con} {
		if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
			t.Error(err)
		}
	}
	a, _ := seq.Relation("Res")
	b, _ := con.Relation("Res")
	if !a.EqualMultiset(b) {
		t.Error("concurrent chains changed the result")
	}
	// Step 2 shares the budget in concurrent mode.
	total := 0
	for _, c := range con.Alloc.Chain {
		total += c
	}
	if con.Alloc.Chain[len(con.Alloc.Chain)-1] != 6 {
		t.Errorf("root chain should hold the full budget: %v", con.Alloc.Chain)
	}
}

// Three dependent chains in a diamond-ish shape under concurrent mode.
func TestConcurrentChainsDeepDependency(t *testing.T) {
	db, err := workload.NewJoinDB(500, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	// Chain 1: copy Br -> T1. Chain 2: copy T1 -> T2. Chain 3: join T2 x A.
	f1 := g.Filter("f1", "Br", nil)
	g.ConnectSame(f1, g.Store("s1", "T1"))
	f2 := g.Filter("f2", "T1", nil)
	g.ConnectSame(f2, g.Store("s2", "T2"))
	tr := g.Transmit("t", "T2")
	j := g.JoinPipelined("j", "A", []string{"k"}, []string{"k"}, lera.HashJoin)
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, g.Store("s3", "Res"))
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{Threads: 4, ConcurrentChains: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
		t.Error(err)
	}
}

// Property: for random (cardinality, degree, skew, threads, algorithm,
// strategy, grain) configurations, the engine always returns exactly the
// oracle join result.
func TestEngineJoinProperty(t *testing.T) {
	f := func(aRaw, dRaw, nRaw, thetaRaw, algoRaw, stratRaw, grainRaw uint8) bool {
		d := int(dRaw)%12 + 2
		aCard := (int(aRaw)%40 + 10) * d
		bCard := d * (int(aRaw)%5 + 1)
		theta := float64(thetaRaw%101) / 100
		threads := int(nRaw)%12 + 1
		algo := []lera.JoinAlgo{lera.NestedLoop, lera.HashJoin, lera.TempIndex}[int(algoRaw)%3]
		strat := []StrategyKind{StrategyRandom, StrategyLPT, StrategyAuto}[int(stratRaw)%3]
		grain := int(grainRaw) % 8 // 0 = whole fragment
		db, err := workload.NewJoinDB(aCard, bCard, d, theta)
		if err != nil {
			return false
		}
		assoc := algoRaw%2 == 0
		var plan *lera.Plan
		if assoc {
			plan, err = db.AssocJoinPlan(algo)
		} else {
			plan, err = db.IdealJoinPlan(algo)
		}
		if err != nil {
			return false
		}
		res, err := Execute(plan, db.Relations(), Options{Threads: threads, Strategy: strat, TriggerGrain: grain, Seed: int64(aRaw) + 1})
		if err != nil {
			return false
		}
		return db.VerifyJoinResult(res.Outputs["Res"]) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
