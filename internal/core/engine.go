package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dbs3/internal/lera"
	"dbs3/internal/operator"
	"dbs3/internal/partition"
	"dbs3/internal/relation"
	"dbs3/internal/storage"
)

// DB maps relation names to their in-memory partitioned form. The engine
// reads base relations from it and adds store outputs to a copy as chains
// complete (materialized results feed later chains).
type DB map[string]*partition.Partitioned

// Options configure one execution.
type Options struct {
	// Threads is the query's total degree of parallelism; 0 = scheduler
	// step 1 chooses from complexity.
	Threads int
	// Processors caps auto-chosen parallelism; defaults to GOMAXPROCS.
	Processors int
	// Strategy overrides the per-operation consumption strategy;
	// StrategyAuto (default) keeps the scheduler's choice.
	Strategy StrategyKind
	// CacheSize is the internal activation cache (batch) size — the upper
	// bound on one queue drain, and so on the tuple runs the vectorized
	// OnBatch path sees; default 64.
	CacheSize int
	// BatchGrain is the producer-side batch size of the pipelined data
	// plane: each pool thread buffers emitted tuples per destination queue
	// and delivers them with a single lock acquire and consumer wake
	// (Queue.PushBatch) once this many accumulate — or sooner, at every
	// trigger boundary, activation-batch boundary and instance close.
	// 1 disables batching (one push per tuple, the paper's protocol);
	// 0 = DefaultBatchGrain. The grain changes only how tuples travel:
	// each still arrives as its own activation, so activation counts,
	// consumption strategies and the skew formula's a are untouched.
	BatchGrain int
	// NoVectorize forces the per-tuple operator path: batches popped from
	// the activation queues are unpacked into individual OnTuple calls even
	// for operators with a vectorized OnBatch implementation — the paper's
	// original processing model. Off (the default) lets such operators
	// process each popped run in one call, vectorized inside. Either way the
	// observable execution is identical: same activation counts, same
	// emitted multisets, same per-node OpStats.
	NoVectorize bool
	// QueueCap is each activation queue's capacity; default 256.
	QueueCap int
	// Seed makes the Random strategy deterministic; default 1.
	Seed int64
	// TriggerGrain splits each triggered instance's operand into partial
	// triggers of at most this many tuples (0 = one trigger per instance,
	// the paper's model). This is the paper's §6 future-work knob: a finer
	// grain multiplies the activation count of triggered operations, which
	// defeats skew without raising the degree of partitioning.
	TriggerGrain int
	// ConcurrentChains runs subquery chains "in a parallel but dependent
	// fashion" (§3): every chain starts as soon as its materialized inputs
	// exist, and step 2 of the scheduler shares the thread budget across
	// chains. False (default) runs chains sequentially in dependency order,
	// each with the full budget.
	ConcurrentChains bool
	// StartupCost, SkewThreshold and Utilization feed the scheduler; see
	// SchedulerOptions. Utilization throttles auto-chosen parallelism for
	// multi-user throughput [Rahm93].
	StartupCost   float64
	SkewThreshold float64
	Utilization   float64
	// Machine is the hardware (or budget) processor ceiling for per-chain
	// desired thread counts; see SchedulerOptions.Machine. 0 = Processors.
	Machine int
	// Readmit, when set, renegotiates the query's thread reservation at
	// the materialization points of a sequential multi-chain execution:
	// before each chain starts, the engine calls Readmit with the chain
	// index, the chain's desired thread count (Allocation.ChainWant) and
	// the chain's node count (min — every node pool runs at least one
	// thread, so a grant below it cannot actually be honored), and
	// receives the granted total; the chain's per-node threads are
	// redistributed over the grant (Allocation.ResizeChain). An admission
	// controller uses the hook to take back a finished chain's surplus
	// threads — or hand out freed budget — between chains
	// (runtime.Manager.Readmit). Readmit must never block on the budget:
	// a grant below the request is the correct answer when the machine is
	// busy. Ignored for single-chain plans, with ConcurrentChains, and
	// when Threads is set explicitly (explicit requests are not adapted).
	Readmit func(chain, want, min int) int
	// CostModel weighs plan complexity estimation; zero value = defaults.
	CostModel *lera.CostModel
	// MemoryBudget is the query's memory grant in bytes for blocking
	// operator state (join build sides, aggregate group tables, stage
	// stores). Exceeding it makes those operators spill to temp files under
	// SpillDir and continue — Grace-style recursive partitioning for hash
	// and temp-index joins, sorted-run merge for aggregates, run flushes
	// for stores. 0 = unlimited: everything stays in memory, the paper's
	// regime. An admission controller sets this to the bytes it actually
	// reserved (runtime.Manager.Admit).
	MemoryBudget int64
	// SpillDir is where spill temp files are created ("" = os.TempDir()).
	SpillDir string
	// Spill, when set, is the query's externally owned spill environment —
	// the facade creates one so it can share a process-wide buffer-pool
	// metrics sink and renegotiate the grant mid-query. The engine then
	// ignores MemoryBudget/SpillDir and does NOT close the env. When nil
	// and MemoryBudget > 0 the engine creates and cleans up its own.
	Spill *storage.SpillEnv
	// StreamOutput names a store output to stream instead of materialize:
	// the store node's tuples are handed to Sink as its instances produce
	// them and never collected into Result.Outputs. The named output must
	// not be read by any other node of the plan (it is the query's final
	// result, not an intermediate materialization point). Empty = every
	// store materializes (the paper's model).
	StreamOutput string
	// Sink receives the StreamOutput tuples; required when StreamOutput is
	// set. Push is called concurrently from pool threads and may block —
	// bounded-sink backpressure suspends the producing threads. A Push
	// error aborts the execution.
	Sink RowSink
}

// RowSink consumes the tuples of a streamed store output as the engine
// produces them (see Options.StreamOutput).
type RowSink interface {
	// Push delivers one tuple; must be safe for concurrent use. Returning
	// an error aborts the execution (the cursor-close path).
	Push(t relation.Tuple) error
}

// RowBatchSink is an optional RowSink extension: a sink implementing it
// receives whole vectorized-path tuple runs in one PushBatch call (one sink
// synchronization per batch). The slice is engine-owned scratch — consume it
// before returning; the Tuples inside are immutable and may be retained.
type RowBatchSink interface {
	RowSink
	PushBatch(ts []relation.Tuple) error
}

// DefaultBatchGrain is the producer-side route-buffer size used when
// Options.BatchGrain is zero: large enough to amortize the queue mutex and
// wake across a meaningful run of tuples, small enough that a buffered tuple
// never waits behind more than a cache line or two of peers.
const DefaultBatchGrain = 64

func (o Options) withDefaults() Options {
	if o.Processors <= 0 {
		o.Processors = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 64
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.BatchGrain == 0 {
		o.BatchGrain = DefaultBatchGrain
	}
	if o.BatchGrain < 1 {
		o.BatchGrain = 1
	}
	// A route buffer deeper than the destination queue amortizes nothing
	// (PushBatch splits at queue capacity anyway), and the grain is also a
	// per-destination buffer *capacity* reachable from untrusted wire
	// options — so clamp it instead of trusting it.
	if o.BatchGrain > o.QueueCap {
		o.BatchGrain = o.QueueCap
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result of an execution.
type Result struct {
	// Outputs holds every store node's materialization, by output name.
	Outputs map[string]*partition.Partitioned
	// Stats holds per-node scheduling counters, by node id.
	Stats map[int]*OpStats
	// Alloc is the thread allocation the scheduler chose.
	Alloc Allocation
}

// Relation flattens a named output into a relation.
func (r *Result) Relation(name string) (*relation.Relation, error) {
	p, ok := r.Outputs[name]
	if !ok {
		return nil, fmt.Errorf("core: no output %q", name)
	}
	return p.Union(), nil
}

// Execute runs a bound plan against a database. Chains (subqueries) run
// sequentially in dependency order — the paper's materialization points —
// with full pipelining inside each chain. It is a thin wrapper over
// ExecuteContext with a background context.
func Execute(plan *lera.Plan, db DB, opts Options) (*Result, error) {
	//dbs3lint:ignore ctxflow documented ctx-less convenience shim over ExecuteContext
	return ExecuteContext(context.Background(), plan, db, opts)
}

// ExecuteContext runs a bound plan against a database under a context. When
// ctx is cancelled mid-execution the engine aborts every running operation:
// workers exit at their next acquire, producers blocked on full-queue
// backpressure are released, and the call returns ctx.Err() promptly without
// leaking goroutines.
func ExecuteContext(ctx context.Context, plan *lera.Plan, db DB, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	alloc, err := PlanAllocation(plan, db, opts)
	if err != nil {
		return nil, err
	}
	return ExecuteAllocated(ctx, plan, db, opts, alloc)
}

// PlanAllocation verifies the database against the plan and runs the
// four-step scheduler, returning the thread allocation ExecuteAllocated
// would use. Splitting allocation from execution lets an admission
// controller (internal/runtime.QueryManager) reserve the chosen thread
// count against a machine-wide budget before the query starts.
func PlanAllocation(plan *lera.Plan, db DB, opts Options) (Allocation, error) {
	opts = opts.withDefaults()
	if err := checkDB(plan, db); err != nil {
		return Allocation{}, err
	}
	cm := lera.DefaultCostModel()
	if opts.CostModel != nil {
		cm = *opts.CostModel
	}
	costs := lera.Estimate(plan, cm)
	alloc := Allocate(plan, costs, func(id int) []float64 { return instanceCosts(plan, db, id) }, SchedulerOptions{
		Threads:          opts.Threads,
		Processors:       opts.Processors,
		StartupCost:      opts.StartupCost,
		Strategy:         opts.Strategy,
		SkewThreshold:    opts.SkewThreshold,
		Utilization:      opts.Utilization,
		ConcurrentChains: opts.ConcurrentChains,
		Machine:          opts.Machine,
	})
	alloc.ChainMem, alloc.MemEstimate = estimateMemory(plan, costs, opts)
	return alloc, nil
}

// ExecuteAllocated runs a plan with a precomputed thread allocation (from
// PlanAllocation). opts should be the same options the allocation was
// computed with.
func ExecuteAllocated(ctx context.Context, plan *lera.Plan, db DB, opts Options, alloc Allocation) (*Result, error) {
	opts = opts.withDefaults()
	if err := checkDB(plan, db); err != nil {
		return nil, err
	}
	if err := checkStream(plan, opts); err != nil {
		return nil, err
	}
	// Larger-than-memory execution: with a memory grant and no externally
	// owned spill environment, create one for this query. The deferred
	// Close covers every exit path — success, error, cancellation — so an
	// aborted query never leaves spill temp files or open descriptors.
	if opts.Spill == nil && opts.MemoryBudget > 0 {
		env, err := storage.NewSpillEnv(opts.SpillDir, opts.MemoryBudget, storage.PoolPagesFor(opts.MemoryBudget), nil)
		if err != nil {
			return nil, err
		}
		defer env.Close()
		opts.Spill = env
	}
	// Working copy: store outputs become visible to later chains.
	work := make(DB, len(db)+len(plan.Outputs))
	for k, v := range db {
		work[k] = v
	}

	res := &Result{
		Outputs: make(map[string]*partition.Partitioned),
		Stats:   make(map[int]*OpStats),
		Alloc:   alloc,
	}
	var mu sync.Mutex // guards work and res across concurrently running chains
	if !opts.ConcurrentChains {
		// Mid-flight re-admission: at each materialization point of a
		// multi-chain plan, renegotiate the thread reservation for the
		// chain about to start and redistribute its node threads over the
		// grant. Explicit thread counts are never adapted.
		readmit := opts.Readmit
		if opts.Threads > 0 || len(plan.Chains) < 2 {
			readmit = nil
		}
		if readmit != nil {
			alloc = alloc.clone()
			res.Alloc = alloc
		}
		for ci, chain := range plan.Chains {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if readmit != nil {
				if grant := readmit(ci, alloc.Want(ci), len(chain)); grant != alloc.Chain[ci] {
					alloc.ResizeChain(ci, chain, grant)
				}
			}
			if err := runChain(ctx, plan, chain, work, alloc, opts, res, &mu); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	// Dependent-parallel chains: each chain starts once the materializations
	// it reads exist. A failed producer still closes its readiness channels
	// so consumers unblock; the failure flag makes them abort.
	ready := make(map[string]chan struct{}, len(plan.Outputs))
	for name := range plan.Outputs {
		ready[name] = make(chan struct{})
	}
	var failed atomic.Bool
	errCh := make(chan error, len(plan.Chains))
	for _, chain := range plan.Chains {
		chain := chain
		go func() {
			outputs := chainOutputs(plan, chain)
			defer func() {
				for _, name := range outputs {
					close(ready[name])
				}
			}()
			for _, dep := range chainDeps(plan, chain) {
				select {
				case <-ready[dep]:
				case <-ctx.Done():
					errCh <- ctx.Err()
					return
				}
			}
			if failed.Load() || ctx.Err() != nil {
				errCh <- ctx.Err() // first error already captured
				return
			}
			if err := runChain(ctx, plan, chain, work, alloc, opts, res, &mu); err != nil {
				failed.Store(true)
				errCh <- err
				return
			}
			errCh <- nil
		}()
	}
	var firstErr error
	for range plan.Chains {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// chainOutputs lists the store-output names a chain produces.
func chainOutputs(plan *lera.Plan, chain []int) []string {
	var out []string
	for _, id := range chain {
		n := plan.Graph.Nodes[id]
		if n.Kind == lera.OpStore {
			out = append(out, n.As)
		}
	}
	return out
}

// chainDeps lists the materialized relations a chain reads from other
// chains (the binder rejects reads of a chain's own outputs).
func chainDeps(plan *lera.Plan, chain []int) []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range chain {
		n := plan.Graph.Nodes[id]
		for _, rel := range []string{n.Rel, n.BuildRel, n.ProbeRel} {
			if rel == "" || seen[rel] {
				continue
			}
			if _, isOutput := plan.Outputs[rel]; isOutput {
				seen[rel] = true
				out = append(out, rel)
			}
		}
	}
	return out
}

// checkStream validates the streaming options: the streamed output must be a
// terminal result, never an intermediate read back by another chain — a
// streamed store leaves nothing behind for a consumer to scan.
func checkStream(plan *lera.Plan, opts Options) error {
	if opts.StreamOutput == "" {
		return nil
	}
	if opts.Sink == nil {
		return fmt.Errorf("core: StreamOutput %q set without a Sink", opts.StreamOutput)
	}
	if _, ok := plan.Outputs[opts.StreamOutput]; !ok {
		return fmt.Errorf("core: StreamOutput %q is not a store output of the plan", opts.StreamOutput)
	}
	for _, bn := range plan.Nodes {
		n := bn.Node
		for _, rel := range []string{n.Rel, n.BuildRel, n.ProbeRel} {
			if rel == opts.StreamOutput {
				return fmt.Errorf("core: cannot stream output %q: node %s reads it", opts.StreamOutput, n.Name)
			}
		}
	}
	return nil
}

// checkDB verifies that the database provides what the plan was bound
// against.
func checkDB(plan *lera.Plan, db DB) error {
	for _, bn := range plan.Nodes {
		n := bn.Node
		for _, req := range []struct {
			name   string
			degree int
		}{
			{n.Rel, bn.Rel.Degree},
			{n.BuildRel, bn.Build.Degree},
			{n.ProbeRel, bn.Probe.Degree},
		} {
			if req.name == "" {
				continue
			}
			if _, isOutput := plan.Outputs[req.name]; isOutput {
				continue // produced during execution
			}
			p, ok := db[req.name]
			if !ok {
				return fmt.Errorf("core: plan needs relation %q, not in database", req.name)
			}
			if p.Degree() != req.degree {
				return fmt.Errorf("core: relation %q has degree %d, plan bound against %d", req.name, p.Degree(), req.degree)
			}
		}
	}
	return nil
}

// instanceCosts estimates per-instance sequential costs for skew detection
// and LPT ordering.
func instanceCosts(plan *lera.Plan, db DB, id int) []float64 {
	bn := plan.Nodes[id]
	n := bn.Node
	frag := func(rel string) []int {
		if p, ok := db[rel]; ok {
			return p.FragmentSizes()
		}
		return nil
	}
	switch n.Kind {
	case lera.OpFilter, lera.OpTransmit:
		sizes := frag(n.Rel)
		out := make([]float64, len(sizes))
		for i, s := range sizes {
			out[i] = float64(s)
		}
		return out
	case lera.OpJoin:
		build := frag(n.BuildRel)
		if build == nil {
			return nil
		}
		out := make([]float64, len(build))
		if n.ProbeRel != "" {
			probe := frag(n.ProbeRel)
			for i := range out {
				switch n.Algo {
				case lera.NestedLoop:
					out[i] = float64(build[i]) * float64(probe[i])
				default:
					out[i] = float64(build[i]) + float64(probe[i])
				}
			}
		} else {
			for i := range out {
				out[i] = float64(build[i])
			}
		}
		return out
	default:
		return nil
	}
}

// runChain executes one pipeline chain to completion. mu serializes access
// to the shared database map and result structures when chains run
// concurrently. Cancelling ctx aborts every operation in the chain: workers
// and blocked producers drain and the chain returns ctx.Err().
func runChain(ctx context.Context, plan *lera.Plan, chain []int, db DB, alloc Allocation, opts Options, res *Result, mu *sync.Mutex) error {
	inChain := make(map[int]bool, len(chain))
	for _, id := range chain {
		inChain[id] = true
	}

	// Build operations (reads the shared database map).
	mu.Lock()
	ops := make(map[int]*Operation, len(chain))
	stores := make(map[int]*operator.Store)
	for _, id := range chain {
		op, store, err := buildOperation(plan, id, db, alloc, opts)
		if err != nil {
			mu.Unlock()
			return err
		}
		ops[id] = op
		if store != nil {
			stores[id] = store
		}
		res.Stats[id] = op.Stats()
	}
	mu.Unlock()

	// Wire emission routing and producer-completion countdowns. Routing is
	// declarative — a target list per producer — so each pool thread can put
	// a private route buffer between Emit and the destination queues
	// (routeEmitter): tuples travel in PushBatch lumps of opts.BatchGrain
	// while every counter downstream still sees individual activations.
	var wireMu sync.Mutex
	producers := make(map[int]int, len(chain)) // consumer id -> unfinished producer count
	targetsOf := make(map[int][]routeTarget, len(chain))
	for ei, be := range plan.Edges {
		e := plan.Graph.Edges[ei]
		if !inChain[e.From] {
			continue
		}
		consumer := ops[e.To]
		producers[e.To]++
		tg := routeTarget{op: consumer}
		switch e.Route {
		case lera.RouteSame:
			tg.same = true
			tg.route = func(inst int, _ relation.Tuple) int { return inst }
		case lera.RouteHash:
			cols := be.RouteColsIdx
			if router := plan.Nodes[e.To].Router; router != nil {
				tg.route = func(_ int, t relation.Tuple) int {
					return router.FragmentOfCols(t, cols)
				}
				if br, ok := router.(partition.BatchFunc); ok {
					tg.routeBatch = func(ts []relation.Tuple, dst []int32) []int32 {
						return br.FragmentsOfCols(ts, cols, dst)
					}
				}
			} else {
				degree := uint64(consumer.Degree())
				tg.route = func(_ int, t relation.Tuple) int {
					return int(t.HashOn(cols) % degree)
				}
				tg.routeBatch = func(ts []relation.Tuple, dst []int32) []int32 {
					for _, t := range ts {
						dst = append(dst, int32(t.HashOn(cols)%degree))
					}
					return dst
				}
			}
		}
		targetsOf[e.From] = append(targetsOf[e.From], tg)
	}
	for _, id := range chain {
		op := ops[id]
		op.targets = targetsOf[id]
		op.batchGrain = opts.BatchGrain
		outs := plan.Graph.Out(id)
		op.onComplete = func() {
			wireMu.Lock()
			var toClose []*Operation
			for _, e := range outs {
				producers[e.To]--
				if producers[e.To] == 0 {
					toClose = append(toClose, ops[e.To])
				}
			}
			wireMu.Unlock()
			for _, c := range toClose {
				for _, q := range c.Queues {
					q.Close()
				}
			}
		}
	}

	// Start pools, inject triggers, wait. A watcher aborts every operation
	// on cancellation so workers and blocked producers unwind; it exits via
	// watchDone when the chain completes normally.
	watchDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				for _, id := range chain {
					ops[id].abort()
				}
			case <-watchDone:
			}
		}()
	}
	var wg sync.WaitGroup
	for _, id := range chain {
		ops[id].run(&wg)
	}
	for _, id := range chain {
		if plan.Graph.Triggered(id) {
			ops[id].InjectTriggers(opts.TriggerGrain)
		}
	}
	wg.Wait()
	close(watchDone)

	if err := ctx.Err(); err != nil {
		return err
	}
	for _, id := range chain {
		if err := ops[id].Err(); err != nil {
			return err
		}
	}

	// Harvest spill counters into the per-node stats.
	for _, id := range chain {
		if bytes, passes := ops[id].SpillStats(); bytes != 0 || passes != 0 {
			res.Stats[id].SpilledBytes.Store(bytes)
			res.Stats[id].SpillPasses.Store(passes)
		}
	}

	// Collect materializations into the working database.
	mu.Lock()
	defer mu.Unlock()
	for id, store := range stores {
		n := plan.Graph.Nodes[id]
		bn := plan.Nodes[id]
		key := storeKey(plan, id)
		frags, err := store.Results()
		if err != nil {
			return err
		}
		p, err := partition.FromFragments(n.As, bn.InSchema, key, frags, 1)
		if err != nil {
			return err
		}
		db[n.As] = p
		res.Outputs[n.As] = p
	}
	return nil
}

// storeKey derives the partitioning key of a materialization from its
// incoming hash-routed edges (nil for RouteSame inputs).
func storeKey(plan *lera.Plan, id int) []string {
	for _, e := range plan.Graph.In(id) {
		if e.Route == lera.RouteHash {
			return append([]string(nil), e.RouteCols...)
		}
	}
	return nil
}

// buildOperation constructs the runtime operation of one node, including its
// operator, per-instance contexts and LPT estimates.
func buildOperation(plan *lera.Plan, id int, db DB, alloc Allocation, opts Options) (*Operation, *operator.Store, error) {
	bn := plan.Nodes[id]
	n := bn.Node
	degree := bn.Degree
	ctxs := make([]*operator.Context, degree)
	for i := range ctxs {
		ctxs[i] = &operator.Context{Instance: i}
	}

	var op operator.Operator
	var store *operator.Store
	switch n.Kind {
	case lera.OpFilter:
		op = &operator.Filter{Pred: bn.Pred}
	case lera.OpTransmit:
		op = &operator.Transmit{}
	case lera.OpJoin:
		op = &operator.Join{Algo: n.Algo, BuildKey: bn.BuildKeyIdx, ProbeKey: bn.ProbeKeyIdx, Spill: opts.Spill}
	case lera.OpMap:
		op = &operator.Map{Cols: bn.ColsIdx}
	case lera.OpAggregate:
		op = &operator.Aggregate{GroupBy: bn.GroupIdx, Kind: n.Agg, AggCol: bn.AggIdx, Spill: opts.Spill}
	case lera.OpStore:
		if n.As == opts.StreamOutput && opts.Sink != nil {
			sink := &operator.Sink{Push: opts.Sink.Push}
			if bs, ok := opts.Sink.(RowBatchSink); ok {
				sink.PushBatch = bs.PushBatch
			}
			op = sink
		} else {
			store = operator.NewStore(degree)
			store.Spill = opts.Spill
			op = store
		}
	default:
		return nil, nil, fmt.Errorf("core: unsupported node kind %v", n.Kind)
	}

	// Bind fragments into the instance contexts.
	if n.Rel != "" {
		p := db[n.Rel]
		if p == nil {
			return nil, nil, fmt.Errorf("core: relation %q not materialized before node %s", n.Rel, n.Name)
		}
		for i := range ctxs {
			ctxs[i].Input = p.Fragments[i]
		}
	}
	if n.BuildRel != "" {
		p := db[n.BuildRel]
		if p == nil {
			return nil, nil, fmt.Errorf("core: relation %q not materialized before node %s", n.BuildRel, n.Name)
		}
		for i := range ctxs {
			ctxs[i].Build = p.Fragments[i]
		}
	}
	if n.ProbeRel != "" {
		p := db[n.ProbeRel]
		if p == nil {
			return nil, nil, fmt.Errorf("core: relation %q not materialized before node %s", n.ProbeRel, n.Name)
		}
		for i := range ctxs {
			ctxs[i].Probe = p.Fragments[i]
		}
	}

	o := newOperation(n.Name, id, op, ctxs, opts.QueueCap, alloc.Node[id], opts.CacheSize, alloc.Strategy[id], opts.Seed+int64(id)*7919, plan.Graph.Triggered(id))
	o.noVectorize = opts.NoVectorize

	// LPT cost estimates per queue.
	switch {
	case plan.Graph.Triggered(id):
		for i, q := range o.Queues {
			var est float64
			switch n.Kind {
			case lera.OpFilter, lera.OpTransmit:
				est = float64(len(ctxs[i].Input))
			case lera.OpJoin:
				if n.Algo == lera.NestedLoop {
					est = float64(len(ctxs[i].Build)) * float64(len(ctxs[i].Probe))
				} else {
					est = float64(len(ctxs[i].Build)) + float64(len(ctxs[i].Probe))
				}
			}
			q.SetEstimate(est)
		}
	case n.Kind == lera.OpJoin:
		// Pipelined probe: per-tuple cost scales with the build fragment
		// for nested loop (scan per probe), constant otherwise.
		for i, q := range o.Queues {
			if n.Algo == lera.NestedLoop {
				q.SetPerTupleCost(float64(len(ctxs[i].Build)))
			}
		}
	}
	return o, store, nil
}
