package core

import "math/rand"

// StrategyKind selects the consumption strategy of an operation's thread
// pool (§3 step 4). Main queues are always preferred; the strategy decides
// among non-empty secondary queues.
type StrategyKind int

const (
	// StrategyAuto lets the scheduler pick: LPT for triggered operations on
	// skewed fragments, Random otherwise.
	StrategyAuto StrategyKind = iota
	// StrategyRandom picks a random non-empty queue — the paper's default.
	StrategyRandom
	// StrategyLPT (Longest Processing Time first [Graham69]) picks the
	// non-empty queue with the most expensive remaining work; the paper's
	// answer to skew on triggered operations.
	StrategyLPT
)

// String names the strategy.
func (s StrategyKind) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyRandom:
		return "random"
	case StrategyLPT:
		return "lpt"
	default:
		return "unknown"
	}
}

// strategy picks a queue index among the non-empty ones; -1 when all empty.
// Implementations need not be goroutine-safe: each worker owns one.
type strategy interface {
	pick(queues []*Queue) int
}

// randomStrategy is the paper's default: a uniformly random non-empty queue.
type randomStrategy struct {
	rng *rand.Rand
	idx []int
}

func newRandomStrategy(seed int64) *randomStrategy {
	return &randomStrategy{rng: rand.New(rand.NewSource(seed))}
}

func (r *randomStrategy) pick(queues []*Queue) int {
	r.idx = r.idx[:0]
	for i, q := range queues {
		if q.Len() > 0 {
			r.idx = append(r.idx, i)
		}
	}
	if len(r.idx) == 0 {
		return -1
	}
	return r.idx[r.rng.Intn(len(r.idx))]
}

// lptStrategy picks the non-empty queue with the highest remaining cost.
// The paper implements LPT without estimating each activation's execution
// time: operation instances are ranked by static fragment-size information,
// which is exactly what Queue.lptScore exposes.
type lptStrategy struct{}

func (lptStrategy) pick(queues []*Queue) int {
	best, bestScore := -1, 0.0
	for i, q := range queues {
		if s := q.lptScore(); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

func newStrategy(kind StrategyKind, seed int64) strategy {
	if kind == StrategyLPT {
		return lptStrategy{}
	}
	return newRandomStrategy(seed)
}
