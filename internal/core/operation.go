package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dbs3/internal/operator"
	"dbs3/internal/relation"
)

// OpStats counts scheduling events of one operation; all fields are updated
// atomically during execution.
type OpStats struct {
	// Activations is the number of activations processed.
	Activations atomic.Int64
	// Batches is the number of queue drains; Activations/Batches is the
	// internal-cache effectiveness.
	Batches atomic.Int64
	// Emitted is the number of tuples sent downstream.
	Emitted atomic.Int64
	// SecondaryPicks counts consumptions from non-main queues — the load
	// redistribution the shared queues exist for. Zero under perfect
	// balance; grows when threads run dry on their own queues.
	SecondaryPicks atomic.Int64
	// Setups is the number of instance setups executed.
	Setups atomic.Int64
	// SpilledBytes and SpillPasses count this node's larger-than-memory
	// activity: bytes written to spill files and partitioning/run-writing
	// sweeps. Zero for operators that stayed within the memory grant.
	SpilledBytes atomic.Int64
	SpillPasses  atomic.Int64
	// perWorker[w] counts activations processed by pool thread w; the
	// spread across workers is the operation's load balance, the quantity
	// the whole execution model optimizes.
	perWorker []atomic.Int64
}

// WorkerActivations returns per-thread activation counts. Call only after
// execution completes.
func (s *OpStats) WorkerActivations() []int64 {
	out := make([]int64, len(s.perWorker))
	for i := range s.perWorker {
		out[i] = s.perWorker[i].Load()
	}
	return out
}

// BalanceRatio returns max/mean of per-worker activation counts: 1.0 is a
// perfect balance; large values mean some threads did most of the work.
func (s *OpStats) BalanceRatio() float64 {
	counts := s.WorkerActivations()
	if len(counts) == 0 {
		return 1
	}
	var sum, max int64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(counts))
	return float64(max) / mean
}

// emitFunc routes one emitted tuple; a test seam — the engine wires routing
// through targets and per-worker route buffers instead (see routeEmitter).
type emitFunc func(inst int, t relation.Tuple)

// routeTarget is one downstream consumer of an operation's output: the
// consuming operation plus the routing function that maps an emitted tuple
// (and the emitting instance) to a destination queue index. same marks
// instance-aligned (RouteSame) targets, whose destination is constant for a
// whole emitted run; routeBatch, when non-nil, routes a whole run in one
// call (hash-partitioned edges whose partitioner vectorizes).
type routeTarget struct {
	op         *Operation
	route      func(inst int, t relation.Tuple) int
	same       bool
	routeBatch func(ts []relation.Tuple, dst []int32) []int32
}

// emitter is the per-worker emission path. emit hands one produced tuple to
// the routing layer, emitRun a whole run of them; flush forces any buffered
// tuples into their destination queues. Workers flush after every processed
// activation batch and after instance closes, so buffered tuples are always
// downstream before an operation can report completion (and close its
// consumers' queues).
type emitter interface {
	emit(inst int, t relation.Tuple)
	emitRun(inst int, ts []relation.Tuple)
	flush()
}

// funcEmitter adapts the emitFunc test seam: unbuffered, flush is a no-op.
type funcEmitter emitFunc

func (f funcEmitter) emit(inst int, t relation.Tuple) { f(inst, t) }
func (f funcEmitter) emitRun(inst int, ts []relation.Tuple) {
	for _, t := range ts {
		f(inst, t)
	}
}
func (funcEmitter) flush() {}

// workerEmit is one worker's reusable emission closure: the operator-facing
// Emit callback plus the state it needs (current queue index, tuples emitted
// since last publish). Allocated once per worker instead of one closure per
// processed batch — the per-batch cost is two field writes, not two heap
// allocations.
type workerEmit struct {
	em      emitter
	qi      int
	emitted int64
	// run gathers emitted tuples so the routing layer sees whole runs
	// (emitRun hoists the per-target and per-destination bookkeeping out of
	// the per-tuple path). Flushed when full and at the end of every
	// processed activation batch — the worker-loop flush contract above.
	run []relation.Tuple
	fn  operator.Emit
}

func newWorkerEmit(em emitter, cap int) *workerEmit {
	if cap < 1 {
		cap = 1
	}
	w := &workerEmit{em: em, run: make([]relation.Tuple, 0, cap)}
	w.fn = w.emit
	return w
}

func (w *workerEmit) emit(t relation.Tuple) {
	w.emitted++
	w.run = append(w.run, t)
	if len(w.run) == cap(w.run) {
		w.flushRun()
	}
}

// flushRun delivers the gathered run to the routing layer. Must run before
// the emitter's flush at every batch boundary.
func (w *workerEmit) flushRun() {
	if len(w.run) > 0 {
		w.em.emitRun(w.qi, w.run)
		w.run = w.run[:0]
	}
}

// routeEmitter is one worker's batch-at-a-time routing state: a small buffer
// per destination queue, flushed into the queue with a single PushBatch (one
// lock, one wake) when it reaches the batch grain — and by flush at the
// activation-batch boundaries above. Buffers are worker-private, so emission
// needs no extra synchronization; they are allocated lazily (first tuple to a
// destination) and reused across flushes.
type routeEmitter struct {
	targets []routeTarget
	grain   int
	bufs    [][][]Activation // [target][destination queue] -> pending tuples
	dsts    []int32          // routeBatch scratch: destinations for one run
}

func newRouteEmitter(targets []routeTarget, grain int) *routeEmitter {
	if grain < 1 {
		grain = 1
	}
	e := &routeEmitter{targets: targets, grain: grain, bufs: make([][][]Activation, len(targets))}
	for i, tg := range targets {
		e.bufs[i] = make([][]Activation, len(tg.op.Queues))
	}
	return e
}

func (e *routeEmitter) emit(inst int, t relation.Tuple) {
	for ti := range e.targets {
		tg := &e.targets[ti]
		dst := tg.route(inst, t)
		buf := e.bufs[ti][dst]
		if buf == nil {
			buf = make([]Activation, 0, e.grain)
		}
		buf = append(buf, Activation{Tuple: t})
		if len(buf) >= e.grain {
			tg.op.Queues[dst].PushBatch(buf)
			buf = buf[:0]
		}
		e.bufs[ti][dst] = buf
	}
}

// emitRun routes a whole run of tuples emitted by one instance: the
// per-target loop, buffer lookups and — on instance-aligned or batch-routable
// edges — the routing decisions are amortized over the run instead of paid
// per tuple.
func (e *routeEmitter) emitRun(inst int, ts []relation.Tuple) {
	for ti := range e.targets {
		tg := &e.targets[ti]
		bufs := e.bufs[ti]
		switch {
		case tg.same:
			// One destination for the whole run.
			buf := bufs[inst]
			if buf == nil {
				buf = make([]Activation, 0, e.grain)
			}
			for _, t := range ts {
				buf = append(buf, Activation{Tuple: t})
				if len(buf) >= e.grain {
					tg.op.Queues[inst].PushBatch(buf)
					buf = buf[:0]
				}
			}
			bufs[inst] = buf
		case tg.routeBatch != nil:
			// Vectorized routing: all destinations computed in one call.
			e.dsts = tg.routeBatch(ts, e.dsts[:0])
			for k, t := range ts {
				dst := e.dsts[k]
				buf := bufs[dst]
				if buf == nil {
					buf = make([]Activation, 0, e.grain)
				}
				buf = append(buf, Activation{Tuple: t})
				if len(buf) >= e.grain {
					tg.op.Queues[dst].PushBatch(buf)
					buf = buf[:0]
				}
				bufs[dst] = buf
			}
		default:
			for _, t := range ts {
				dst := tg.route(inst, t)
				buf := bufs[dst]
				if buf == nil {
					buf = make([]Activation, 0, e.grain)
				}
				buf = append(buf, Activation{Tuple: t})
				if len(buf) >= e.grain {
					tg.op.Queues[dst].PushBatch(buf)
					buf = buf[:0]
				}
				bufs[dst] = buf
			}
		}
	}
}

func (e *routeEmitter) flush() {
	for ti := range e.targets {
		qs := e.targets[ti].op.Queues
		for dst, buf := range e.bufs[ti] {
			if len(buf) > 0 {
				qs[dst].PushBatch(buf)
				e.bufs[ti][dst] = buf[:0]
			}
		}
	}
}

// Operation is the runtime form of one Lera-par node: QueueNb activation
// queues (one per instance), a pool of ThreadNb worker goroutines that all
// see all queues, an internal activation cache of CacheSize, and a
// consumption strategy (paper Figure 4's operation structure).
type Operation struct {
	Name      string
	NodeID    int
	Queues    []*Queue
	Workers   int
	CacheSize int
	Strat     StrategyKind

	op   operator.Operator
	ctxs []*operator.Context
	// batchOp is op's vectorized face, non-nil when the operator implements
	// BatchOperator: process hands it whole runs of pipelined tuples instead
	// of unpacking them into per-tuple OnTuple calls. Cleared by noVectorize
	// (Options.NoVectorize) to force the per-tuple path.
	batchOp     operator.BatchOperator
	noVectorize bool
	setups      []sync.Once
	emit        emitFunc // test seam; production routing uses targets
	seed        int64
	stats       *OpStats
	triggered   bool

	// targets and batchGrain configure the batch-at-a-time routing layer:
	// each worker buffers emitted tuples per destination queue and delivers
	// them with one PushBatch per batchGrain tuples. Set by the engine
	// (runChain) before the pools start.
	targets    []routeTarget
	batchGrain int

	mu         sync.Mutex
	cond       *sync.Cond
	inflight   []int
	closeBegun []bool
	doneCount  int
	completed  bool
	aborted    bool
	onComplete func()
	// abortFlag mirrors aborted for cheap lock-free polling between
	// activations: cancellation latency is bounded by one activation's
	// work, not a whole batch (and TriggerGrain shrinks the activations
	// themselves).
	abortFlag atomic.Bool

	firstErr error
}

// newOperation builds an operation over its instance contexts.
func newOperation(name string, nodeID int, op operator.Operator, ctxs []*operator.Context, queueCap, workers, cacheSize int, strat StrategyKind, seed int64, triggered bool) *Operation {
	if workers < 1 {
		workers = 1
	}
	if cacheSize < 1 {
		cacheSize = 1
	}
	o := &Operation{
		Name:       name,
		NodeID:     nodeID,
		Queues:     make([]*Queue, len(ctxs)),
		Workers:    workers,
		CacheSize:  cacheSize,
		Strat:      strat,
		op:         op,
		ctxs:       ctxs,
		setups:     make([]sync.Once, len(ctxs)),
		seed:       seed,
		stats:      &OpStats{perWorker: make([]atomic.Int64, workers)},
		triggered:  triggered,
		inflight:   make([]int, len(ctxs)),
		closeBegun: make([]bool, len(ctxs)),
	}
	if bo, ok := op.(operator.BatchOperator); ok {
		o.batchOp = bo
	}
	o.cond = sync.NewCond(&o.mu)
	for i := range o.Queues {
		q := NewQueue(queueCap)
		q.onPush = o.wake
		o.Queues[i] = q
	}
	return o
}

// wake pokes waiting workers. Taking the scheduling lock orders the wakeup
// against the check-then-wait in acquire, avoiding lost notifications.
func (o *Operation) wake() {
	o.mu.Lock()
	o.cond.Broadcast()
	o.mu.Unlock()
}

// Stats exposes the operation's counters.
func (o *Operation) Stats() *OpStats { return o.stats }

// spiller is implemented by operators that can go to disk (Join, Aggregate,
// Store via their embedded spill counters).
type spiller interface {
	SpillStats() (bytes, passes int64)
}

// SpillStats reports the operator's spill counters; (0, 0) for operators
// that never spill.
func (o *Operation) SpillStats() (bytes, passes int64) {
	if sp, ok := o.op.(spiller); ok {
		return sp.SpillStats()
	}
	return 0, 0
}

// Degree returns the instance count.
func (o *Operation) Degree() int { return len(o.Queues) }

// run starts the worker pool; the WaitGroup is released as workers exit.
func (o *Operation) run(wg *sync.WaitGroup) {
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o.worker(w)
		}(w)
	}
}

// worker is the pool thread body: acquire a batch from a main queue first,
// then from a secondary queue by strategy; process it through the operator;
// run instance closes when an instance drains; exit when the operation is
// drained.
func (o *Operation) worker(w int) {
	// Main queues: queue i is main for worker i % Workers, so every queue
	// is the main queue of exactly one thread but a thread may own several
	// (§3: "each queue is the main queue of only one thread but each thread
	// can have several main queues").
	var main []*Queue
	var mainIdx []int
	for i := w; i < len(o.Queues); i += o.Workers {
		main = append(main, o.Queues[i])
		mainIdx = append(mainIdx, i)
	}
	strat := newStrategy(o.Strat, o.seed+int64(w))
	cache := make([]Activation, 0, o.CacheSize)
	em := o.newEmitter()
	we := newWorkerEmit(em, o.CacheSize)
	// Worker-private tuple scratch for the vectorized path: runs of pipelined
	// activations are gathered here and handed to OnBatch in one call.
	var tup []relation.Tuple
	if o.batchOp != nil && !o.noVectorize {
		tup = make([]relation.Tuple, 0, o.CacheSize)
	}

	for {
		batch, qi, ok := o.acquire(strat, main, mainIdx, cache, em)
		if !ok {
			return
		}
		if len(batch) == 0 {
			continue
		}
		o.stats.perWorker[w].Add(int64(len(batch)))
		o.process(qi, batch, we, tup)
		// Flush at the batch boundary: every trigger boundary and pipelined
		// activation batch delivers its buffered output before the batch is
		// retired — an operation can never complete (and close its consumers'
		// queues) with tuples still parked in a route buffer.
		em.flush()
		o.finishBatch(qi, len(batch), em)
		cache = batch[:0]
	}
}

// newEmitter builds this worker's emission path: the engine-wired route
// buffers, or the unbuffered test seam when emit is set directly.
func (o *Operation) newEmitter() emitter {
	if o.emit != nil {
		return funcEmitter(o.emit)
	}
	return newRouteEmitter(o.targets, o.batchGrain)
}

// acquire picks a queue and drains a batch into cache. ok=false means the
// operation is fully drained and the worker should exit (after the instance
// close sweep).
func (o *Operation) acquire(strat strategy, main []*Queue, mainIdx []int, cache []Activation, em emitter) ([]Activation, int, bool) {
	o.mu.Lock()
	for {
		if o.aborted {
			o.mu.Unlock()
			return nil, -1, false
		}
		qi := -1
		if k := strat.pick(main); k >= 0 {
			qi = mainIdx[k]
		} else if k := strat.pick(o.Queues); k >= 0 {
			qi = k
			o.stats.SecondaryPicks.Add(1)
		}
		if qi >= 0 {
			batch := o.Queues[qi].popBatch(o.CacheSize, cache)
			if len(batch) > 0 {
				o.inflight[qi] += len(batch)
				o.mu.Unlock()
				o.stats.Batches.Add(1)
				o.stats.Activations.Add(int64(len(batch)))
				return batch, qi, true
			}
			// Raced with another worker; rescan.
			continue
		}
		if o.allDrainedLocked() {
			sweep := o.claimClosesLocked()
			o.mu.Unlock()
			o.runCloses(sweep, em)
			return nil, -1, false
		}
		o.cond.Wait()
	}
}

// allDrainedLocked reports whether every queue is closed and empty.
func (o *Operation) allDrainedLocked() bool {
	for _, q := range o.Queues {
		if !q.Drained() {
			return false
		}
	}
	return true
}

// claimClosesLocked claims instances whose close has not started and which
// have no in-flight activations.
func (o *Operation) claimClosesLocked() []int {
	var out []int
	for i := range o.Queues {
		if !o.closeBegun[i] && o.inflight[i] == 0 {
			o.closeBegun[i] = true
			out = append(out, i)
		}
	}
	return out
}

// process runs the operator on a batch. Panics inside operators are engine
// bugs and propagate; data errors are recorded and stop further emission.
//
// When the operator vectorizes (batchOp set and NoVectorize off), runs of
// consecutive pipelined tuple activations are gathered into the worker's tup
// scratch and handed to OnBatch in one call; triggers still dispatch
// individually. The emitted counter is accumulated locally and published
// once per batch — one atomic add instead of one per tuple — and the abort
// flag is polled once per run, so cancellation latency stays bounded by one
// internal-cache batch either way. Activation counts are untouched: each
// tuple was already counted when its activation was acquired.
func (o *Operation) process(qi int, batch []Activation, we *workerEmit, tup []relation.Tuple) {
	ctx := o.ctxs[qi]
	o.setups[qi].Do(func() {
		o.stats.Setups.Add(1)
		if err := o.op.Setup(ctx); err != nil {
			o.fail(err)
		}
	})
	we.qi, we.emitted = qi, 0
	o.dispatch(ctx, batch, we.fn, tup)
	we.flushRun()
	if we.emitted > 0 {
		o.stats.Emitted.Add(we.emitted)
	}
}

// dispatch walks one activation batch, handing runs of pipelined tuples to
// the vectorized path and everything else to the scalar one. Errors are
// recorded via fail and stop the batch.
func (o *Operation) dispatch(ctx *operator.Context, batch []Activation, emit operator.Emit, tup []relation.Tuple) {
	bo := o.batchOp
	if o.noVectorize {
		bo = nil
	}
	for i := 0; i < len(batch); {
		if o.abortFlag.Load() {
			return
		}
		a := batch[i]
		if a.Tuple == nil {
			var err error
			if a.IsPartial() {
				err = o.op.OnTrigger(chunkView(ctx, int(a.Lo), int(a.Hi)), emit)
			} else {
				err = o.op.OnTrigger(ctx, emit)
			}
			if err != nil {
				o.fail(err)
				return
			}
			i++
			continue
		}
		if bo == nil {
			if err := o.op.OnTuple(ctx, a.Tuple, emit); err != nil {
				o.fail(err)
				return
			}
			i++
			continue
		}
		j := i + 1
		for j < len(batch) && batch[j].Tuple != nil {
			j++
		}
		tup = tup[:0]
		for _, b := range batch[i:j] {
			tup = append(tup, b.Tuple)
		}
		if err := bo.OnBatch(ctx, tup, emit); err != nil {
			o.fail(err)
			return
		}
		i = j
	}
}

// chunkView builds a context restricted to the [lo, hi) slice of the
// instance's triggered operand (Input for filter/transmit, Probe for joins).
// Build state is shared: partial triggers only split the scan side, and the
// per-instance State set by Setup is read-only during triggers.
func chunkView(ctx *operator.Context, lo, hi int) *operator.Context {
	view := &operator.Context{Instance: ctx.Instance, Build: ctx.Build, State: ctx.State}
	if ctx.Input != nil {
		view.Input = ctx.Input[lo:hi]
	}
	if ctx.Probe != nil {
		view.Probe = ctx.Probe[lo:hi]
	}
	return view
}

// InjectTriggers pushes the control activations of a triggered operation and
// closes its queues. grain 0 sends one whole-fragment trigger per instance
// (the paper's model); grain g > 0 splits each instance's triggered operand
// into ceil(span/g) partial triggers of at most g tuples (§6 future work).
func (o *Operation) InjectTriggers(grain int) {
	var batch []Activation // reused across queues; PushBatch copies
	for i, q := range o.Queues {
		span := len(o.ctxs[i].Input)
		if span == 0 {
			span = len(o.ctxs[i].Probe)
		}
		if grain <= 0 || span == 0 {
			q.Push(Activation{})
		} else {
			batch = batch[:0]
			for lo := 0; lo < span; lo += grain {
				hi := lo + grain
				if hi > span {
					hi = span
				}
				batch = append(batch, Activation{Lo: int32(lo), Hi: int32(hi)})
			}
			q.PushBatch(batch)
		}
		q.Close()
	}
}

// finishBatch retires in-flight activations and runs the instance close when
// the instance drained.
func (o *Operation) finishBatch(qi, n int, em emitter) {
	o.mu.Lock()
	o.inflight[qi] -= n
	var toClose []int
	if o.Queues[qi].Drained() && o.inflight[qi] == 0 && !o.closeBegun[qi] {
		o.closeBegun[qi] = true
		toClose = append(toClose, qi)
	}
	o.mu.Unlock()
	o.runCloses(toClose, em)
}

// runCloses executes OnClose for the claimed instances and fires the
// operation-complete callback after the last one. OnClose output (buffered
// aggregate state) is flushed downstream before the completion accounting, so
// the callback — which closes consumer queues — never races a pending buffer.
func (o *Operation) runCloses(instances []int, em emitter) {
	for _, qi := range instances {
		ctx := o.ctxs[qi]
		o.setups[qi].Do(func() {
			o.stats.Setups.Add(1)
			if err := o.op.Setup(ctx); err != nil {
				o.fail(err)
			}
		})
		var emitted int64
		emit := func(t relation.Tuple) {
			emitted++
			em.emit(qi, t)
		}
		if err := o.op.OnClose(ctx, emit); err != nil {
			o.fail(err)
		}
		if emitted > 0 {
			o.stats.Emitted.Add(emitted)
		}
	}
	if len(instances) == 0 {
		return
	}
	em.flush()
	o.mu.Lock()
	o.doneCount += len(instances)
	complete := o.doneCount == len(o.Queues) && !o.completed
	if complete {
		o.completed = true
	}
	o.mu.Unlock()
	if complete && o.onComplete != nil {
		o.onComplete()
	}
}

// abort cancels the operation: workers exit at their next acquire, blocked
// producers pushing into this operation's queues are released, and further
// pushes are dropped. Instance closes and the completion callback are
// skipped — a cancelled execution reports no result.
func (o *Operation) abort() {
	o.abortFlag.Store(true)
	o.mu.Lock()
	o.aborted = true
	o.cond.Broadcast()
	o.mu.Unlock()
	for _, q := range o.Queues {
		q.Abort()
	}
}

// fail records the first operator error.
func (o *Operation) fail(err error) {
	o.mu.Lock()
	if o.firstErr == nil {
		o.firstErr = fmt.Errorf("core: operation %s: %w", o.Name, err)
	}
	o.mu.Unlock()
}

// Err returns the first operator error, if any.
func (o *Operation) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.firstErr
}
