package core

// Larger-than-memory equivalence suite: every join algorithm with a build
// structure, and every aggregate shape, executed under a memory budget tiny
// enough that the working set exceeds it several times over (forcing
// multi-pass Grace partitioning and sorted-run merges) must be
// indistinguishable from the unbounded in-memory run in everything but disk
// traffic — identical result multisets and identical per-operator
// activation/emission accounting, at batch grains 1 and 64, under -race.
// Cancellation mid-spill must leave no temp files and no open descriptors.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"dbs3/internal/esql"
	"dbs3/internal/lera"
	"dbs3/internal/workload"
)

// spillBudget is a deliberately starved grant: two pages. The join build
// sides and aggregate tables below are 4x-10x larger, so every blocking
// operator overruns it and degrades to disk.
const spillBudget = 16 << 10

// spillGrains exercises the per-tuple and vectorized data planes against the
// spill paths (grace probes buffer per batch; runs flush at page grain).
var spillGrains = []int{1, 64}

func totalSpilled(res *Result) (bytes, passes int64) {
	for _, st := range res.Stats {
		bytes += st.SpilledBytes.Load()
		passes += st.SpillPasses.Load()
	}
	return bytes, passes
}

func TestSpillEquivalenceJoins(t *testing.T) {
	// 4000 B-tuples at ~70 in-memory bytes each put the build side near
	// 280KB — well past 4x the 16KB budget.
	db, err := workload.NewJoinDB(8000, 4000, 8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []lera.JoinAlgo{lera.HashJoin, lera.TempIndex} {
		for _, assoc := range []bool{false, true} {
			name := fmt.Sprintf("algo=%v/assoc=%v", algo, assoc)
			// Unbounded in-memory reference, strict per-tuple protocol.
			base := Options{Threads: 4, BatchGrain: 1, NoVectorize: true}
			ref := executeJoin(t, db, assoc, algo, base)
			refRel, err := ref.Relation("Res")
			if err != nil {
				t.Fatal(err)
			}
			refStats := statsSnapshot(ref)
			if err := db.VerifyJoinResult(ref.Outputs["Res"]); err != nil {
				t.Fatalf("%s: in-memory reference wrong: %v", name, err)
			}
			if b, _ := totalSpilled(ref); b != 0 {
				t.Fatalf("%s: unbounded reference spilled %d bytes", name, b)
			}
			for _, bg := range spillGrains {
				opts := base
				opts.BatchGrain = bg
				opts.NoVectorize = bg == 1 // grain 1 stays per-tuple, 64 vectorizes
				opts.MemoryBudget = spillBudget
				opts.SpillDir = t.TempDir()
				got := executeJoin(t, db, assoc, algo, opts)
				gotRel, err := got.Relation("Res")
				if err != nil {
					t.Fatal(err)
				}
				if !gotRel.EqualMultiset(refRel) {
					t.Errorf("%s: spilled grain %d result differs from in-memory reference", name, bg)
				}
				if err := db.VerifyJoinResult(got.Outputs["Res"]); err != nil {
					t.Errorf("%s: spilled grain %d result wrong: %v", name, bg, err)
				}
				if gs := statsSnapshot(got); !statsEqual(gs, refStats) {
					t.Errorf("%s: spilled grain %d accounting %v, in-memory %v — spilling must not change activation accounting",
						name, bg, gs, refStats)
				}
				bytes, passes := totalSpilled(got)
				if bytes == 0 || passes == 0 {
					t.Errorf("%s: grain %d with budget %d did not spill (bytes=%d passes=%d)", name, bg, spillBudget, bytes, passes)
				}
				// The spill dir is clean once the query completed.
				ents, err := os.ReadDir(opts.SpillDir)
				if err != nil {
					t.Fatal(err)
				}
				if len(ents) != 0 {
					t.Errorf("%s: grain %d left %d spill files behind", name, bg, len(ents))
				}
			}
		}
	}
}

func TestSpillEquivalenceAggregates(t *testing.T) {
	// High-cardinality groupings so the accumulator tables dwarf the budget;
	// the low-cardinality one rides along to prove a fitting query is
	// untouched by the machinery.
	cases := []struct {
		sql        string
		wantsSpill bool
	}{
		{"SELECT unique2, COUNT(*) FROM wisc GROUP BY unique2", true},
		{"SELECT unique1, SUM(unique2) FROM wisc GROUP BY unique1", true},
		{"SELECT unique2, MAX(unique1) FROM wisc WHERE unique1 < 3000 GROUP BY unique2", true},
		{"SELECT ten, COUNT(*) FROM wisc GROUP BY ten", false},
	}
	for _, partKey := range []string{"unique2", "four"} {
		for _, tc := range cases {
			plan, db := wisconsinPlan(t, tc.sql, partKey, 4000, 8)
			run := func(budget int64, dir string, bg int, noVec bool) (*Result, map[int][3]int64) {
				res, err := Execute(plan, db, Options{
					Threads: 4, BatchGrain: bg, NoVectorize: noVec,
					MemoryBudget: budget, SpillDir: dir,
				})
				if err != nil {
					t.Fatalf("part=%s sql=%q budget=%d: %v", partKey, tc.sql, budget, err)
				}
				return res, statsSnapshot(res)
			}
			ref, refStats := run(0, "", 1, true)
			refRel, err := ref.Relation(esql.OutputName)
			if err != nil {
				t.Fatal(err)
			}
			if refRel.Cardinality() == 0 {
				t.Fatalf("part=%s sql=%q: empty reference result", partKey, tc.sql)
			}
			for _, bg := range spillGrains {
				dir := t.TempDir()
				got, gotStats := run(spillBudget, dir, bg, bg == 1)
				gotRel, err := got.Relation(esql.OutputName)
				if err != nil {
					t.Fatal(err)
				}
				if !gotRel.EqualMultiset(refRel) {
					t.Errorf("part=%s sql=%q grain=%d: spilled result differs from in-memory reference", partKey, tc.sql, bg)
				}
				if !statsEqual(gotStats, refStats) {
					t.Errorf("part=%s sql=%q grain=%d: spilled accounting %v, in-memory %v", partKey, tc.sql, bg, gotStats, refStats)
				}
				bytes, _ := totalSpilled(got)
				if tc.wantsSpill && bytes == 0 {
					t.Errorf("part=%s sql=%q grain=%d: budget %d did not force a spill", partKey, tc.sql, bg, spillBudget)
				}
				if !tc.wantsSpill && bytes != 0 {
					t.Errorf("part=%s sql=%q grain=%d: fitting query spilled %d bytes", partKey, tc.sql, bg, bytes)
				}
				if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
					t.Errorf("part=%s sql=%q grain=%d: spill dir not clean after completion (%d entries, %v)", partKey, tc.sql, bg, len(ents), err)
				}
			}
		}
	}
}

// openFDs counts this process's open file descriptors.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// TestSpillCancellationCleansUp: a query cancelled mid-spill must remove its
// partition files and close their descriptors — no temp-file or FD leak from
// an execution that never reached its own cleanup path.
func TestSpillCancellationCleansUp(t *testing.T) {
	db, err := workload.NewJoinDB(20_000, 8_000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.AssocJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fdsBefore := openFDs(t)
	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancelSink{after: 20, cancel: cancel}
	_, err = ExecuteContext(ctx, plan, db.Relations(), Options{
		Threads: 4, MemoryBudget: spillBudget, SpillDir: dir,
		StreamOutput: "Res", Sink: sink,
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The engine's deferred env.Close runs before ExecuteContext returns,
	// but give the FD table a moment to settle under -race scheduling.
	deadline := time.Now().Add(5 * time.Second)
	for openFDs(t) > fdsBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := openFDs(t); got > fdsBefore {
		t.Errorf("descriptors leaked: %d before, %d after cancel", fdsBefore, got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("cancelled query left %d spill files in %s", len(ents), dir)
	}
}

// TestSpillBudgetNeverExceeded: while a starved join runs, the accountant's
// resident figure stays within the same order as the grant — the build never
// materializes in memory. This is a coarse invariant (reservations may
// transiently overshoot by one tuple batch before the spill releases), so it
// checks the final state: all reservations returned.
func TestSpillAccountingDrains(t *testing.T) {
	db, err := workload.NewJoinDB(8000, 4000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db.Relations(), Options{Threads: 4, MemoryBudget: spillBudget, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyJoinResult(res.Outputs["Res"]); err != nil {
		t.Fatal(err)
	}
	if b, _ := totalSpilled(res); b == 0 {
		t.Fatal("expected the starved join to spill")
	}
}
