package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbs3/internal/zipf"
)

// OpenLoopStatement is one statement template in an open-loop mix: SQL with
// `?` placeholders whose arguments are drawn per execution.
type OpenLoopStatement struct {
	SQL string
	// Params is the number of `?` placeholders; each binds a Zipf-sampled
	// integer rank in [1, ArgDomain].
	Params int
}

// OpenLoopConfig drives an open-loop load test: statements arrive at a
// fixed rate regardless of completions — the honest latency methodology,
// because a closed loop's waiting clients throttle the very overload being
// measured.
type OpenLoopConfig struct {
	// Statements is the query mix; arrivals pick from it Zipf-skewed (the
	// first statement is the most popular).
	Statements []OpenLoopStatement
	// Rate is the arrival rate in statements/second.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// MaxInFlight bounds concurrently outstanding statements; an arrival
	// past the bound is dropped and counted (0 = 4096). It models client
	// connection limits and keeps an overloaded run from spawning
	// goroutines without bound.
	MaxInFlight int
	// ArgDomain is the argument sample space: each `?` binds a Zipf rank in
	// [1, ArgDomain] (0 = 1000).
	ArgDomain int
	// Theta is the Zipf skew of both statement popularity and argument
	// values (0 = uniform).
	Theta float64
	// Seed makes arrival timing and sampling reproducible.
	Seed int64
	// Run executes one statement — the seam the harness drives: a cluster
	// coordinator, a single server.Client, or the in-process facade.
	Run func(ctx context.Context, sql string, args []any) error
	// Shed classifies a Run error as deliberate server-side load shedding
	// (admission-queue rejection) rather than a failure. Shed errors are
	// counted separately: at an over-capacity arrival rate, shedding is the
	// measured outcome, not a broken run. Nil treats every error as a
	// failure.
	Shed func(error) bool
}

// OpenLoopResult summarizes one open-loop run.
type OpenLoopResult struct {
	Issued    int64 `json:"issued"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Shed counts statements the server rejected under load (per the Shed
	// classifier); Dropped counts arrivals shed client-side at the
	// MaxInFlight bound.
	Shed    int64 `json:"shed"`
	Dropped int64 `json:"dropped"`
	// Throughput is completions per second of wall-clock run time.
	Throughput float64 `json:"throughput"`
	// Latency percentiles over completed statements, in milliseconds.
	P50Millis  float64 `json:"p50Millis"`
	P95Millis  float64 `json:"p95Millis"`
	P99Millis  float64 `json:"p99Millis"`
	MaxMillis  float64 `json:"maxMillis"`
	MeanMillis float64 `json:"meanMillis"`
	// Elapsed is the wall-clock run time in seconds (arrival window plus
	// the drain of in-flight statements).
	Elapsed float64 `json:"elapsed"`
}

// OpenLoop runs the configured load until Duration's arrivals are issued
// and every in-flight statement settles, then reports latency and
// throughput. Arrival spacing is exponential (Poisson process) at Rate.
func OpenLoop(ctx context.Context, cfg OpenLoopConfig) (*OpenLoopResult, error) {
	if len(cfg.Statements) == 0 {
		return nil, fmt.Errorf("workload: open loop needs at least one statement")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: open loop needs a positive arrival rate, got %v", cfg.Rate)
	}
	if cfg.Run == nil {
		return nil, fmt.Errorf("workload: open loop needs a Run function")
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}
	domain := cfg.ArgDomain
	if domain <= 0 {
		domain = 1000
	}

	// Independent sampler streams so statement popularity, argument skew
	// and arrival jitter do not correlate.
	stmtPick := zipf.NewSampler(len(cfg.Statements), cfg.Theta, cfg.Seed)
	argPick := zipf.NewSampler(domain, cfg.Theta, cfg.Seed+1)
	jitter := rand.New(rand.NewSource(cfg.Seed + 2))

	var (
		issued, completed, failed, shed, dropped atomic.Int64
		inFlight                                 atomic.Int64
		mu                                       sync.Mutex
		latencies                                []time.Duration
		wg                                       sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		stmt := cfg.Statements[stmtPick.Next()-1]
		args := make([]any, stmt.Params)
		for i := range args {
			args[i] = int64(argPick.Next())
		}
		if inFlight.Load() >= int64(maxInFlight) {
			dropped.Add(1)
		} else {
			issued.Add(1)
			inFlight.Add(1)
			wg.Add(1)
			go func(sql string, args []any) {
				defer wg.Done()
				defer inFlight.Add(-1)
				t0 := time.Now()
				err := cfg.Run(ctx, sql, args)
				d := time.Since(t0)
				if err != nil {
					if cfg.Shed != nil && cfg.Shed(err) {
						shed.Add(1)
					} else {
						failed.Add(1)
					}
					return
				}
				completed.Add(1)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}(stmt.SQL, args)
		}
		// Poisson arrivals: exponential inter-arrival gaps at Rate.
		gap := time.Duration(jitter.ExpFloat64() / cfg.Rate * float64(time.Second))
		select {
		case <-time.After(gap):
		case <-ctx.Done():
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &OpenLoopResult{
		Issued:    issued.Load(),
		Completed: completed.Load(),
		Failed:    failed.Load(),
		Shed:      shed.Load(),
		Dropped:   dropped.Load(),
		Elapsed:   elapsed.Seconds(),
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Completed) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(latencies)-1))
			return float64(latencies[idx]) / float64(time.Millisecond)
		}
		res.P50Millis = pct(0.50)
		res.P95Millis = pct(0.95)
		res.P99Millis = pct(0.99)
		res.MaxMillis = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
		var sum time.Duration
		for _, d := range latencies {
			sum += d
		}
		res.MeanMillis = float64(sum) / float64(len(latencies)) / float64(time.Millisecond)
	}
	return res, nil
}
