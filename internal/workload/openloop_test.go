package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestOpenLoopCountsAndLatency: the harness issues at roughly the asked
// rate, completions and failures are accounted separately, and latency
// percentiles are ordered.
func TestOpenLoopCountsAndLatency(t *testing.T) {
	var calls atomic.Int64
	res, err := OpenLoop(context.Background(), OpenLoopConfig{
		Statements: []OpenLoopStatement{
			{SQL: "fast", Params: 1},
			{SQL: "slow", Params: 2},
		},
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Theta:    0.5,
		Seed:     7,
		Run: func(ctx context.Context, sql string, args []any) error {
			calls.Add(1)
			if len(args) == 0 {
				return errors.New("missing sampled args")
			}
			for _, a := range args {
				if v, ok := a.(int64); !ok || v < 1 {
					return errors.New("argument not a positive rank")
				}
			}
			if sql == "slow" {
				time.Sleep(5 * time.Millisecond)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued == 0 || res.Issued != calls.Load() {
		t.Fatalf("issued=%d calls=%d", res.Issued, calls.Load())
	}
	if res.Completed != res.Issued || res.Failed != 0 {
		t.Fatalf("completed=%d failed=%d issued=%d; Run never errored", res.Completed, res.Failed, res.Issued)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", res.Throughput)
	}
	if !(res.P50Millis <= res.P95Millis && res.P95Millis <= res.P99Millis && res.P99Millis <= res.MaxMillis) {
		t.Errorf("percentiles unordered: p50=%v p95=%v p99=%v max=%v", res.P50Millis, res.P95Millis, res.P99Millis, res.MaxMillis)
	}
}

// TestOpenLoopFailuresCounted: Run errors land in Failed, not Completed,
// and do not contribute latency samples.
func TestOpenLoopFailuresCounted(t *testing.T) {
	res, err := OpenLoop(context.Background(), OpenLoopConfig{
		Statements: []OpenLoopStatement{{SQL: "boom"}},
		Rate:       200,
		Duration:   100 * time.Millisecond,
		Run: func(ctx context.Context, sql string, args []any) error {
			return errors.New("always fails")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != res.Issued || res.Completed != 0 {
		t.Fatalf("failed=%d completed=%d issued=%d, want all failed", res.Failed, res.Completed, res.Issued)
	}
	if res.P50Millis != 0 {
		t.Errorf("latency percentiles from failed runs: p50=%v", res.P50Millis)
	}
}

// TestOpenLoopShedClassified: errors the Shed classifier recognizes are
// counted as server-side load shedding, not failures; everything else
// still lands in Failed.
func TestOpenLoopShedClassified(t *testing.T) {
	errShed := errors.New("server: status 503: runtime: admission queue full")
	errReal := errors.New("parse error")
	var n atomic.Int64
	res, err := OpenLoop(context.Background(), OpenLoopConfig{
		Statements: []OpenLoopStatement{{SQL: "x"}},
		Rate:       500,
		Duration:   100 * time.Millisecond,
		Run: func(ctx context.Context, sql string, args []any) error {
			if n.Add(1)%2 == 0 {
				return errShed
			}
			return errReal
		},
		Shed: func(err error) bool { return errors.Is(err, errShed) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 || res.Failed == 0 {
		t.Fatalf("shed=%d failed=%d, want both nonzero", res.Shed, res.Failed)
	}
	if res.Shed+res.Failed != res.Issued || res.Completed != 0 {
		t.Fatalf("shed=%d + failed=%d != issued=%d (completed=%d)", res.Shed, res.Failed, res.Issued, res.Completed)
	}
}

// TestOpenLoopInFlightBound: with Run blocked, arrivals past MaxInFlight
// are dropped instead of growing goroutines without bound.
func TestOpenLoopInFlightBound(t *testing.T) {
	release := make(chan struct{})
	res, err := OpenLoop(context.Background(), OpenLoopConfig{
		Statements:  []OpenLoopStatement{{SQL: "hang"}},
		Rate:        1000,
		Duration:    100 * time.Millisecond,
		MaxInFlight: 5,
		Run: func(ctx context.Context, sql string, args []any) error {
			select {
			case <-release:
			case <-time.After(300 * time.Millisecond):
			}
			return nil
		},
	})
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued > 5 {
		t.Errorf("issued %d with MaxInFlight 5", res.Issued)
	}
	if res.Dropped == 0 {
		t.Error("no arrivals dropped despite a saturated in-flight bound")
	}
}

// TestOpenLoopValidation: a broken config is rejected up front.
func TestOpenLoopValidation(t *testing.T) {
	run := func(ctx context.Context, sql string, args []any) error { return nil }
	for name, cfg := range map[string]OpenLoopConfig{
		"no statements": {Rate: 1, Duration: time.Millisecond, Run: run},
		"no rate":       {Statements: []OpenLoopStatement{{SQL: "x"}}, Duration: time.Millisecond, Run: run},
		"no run":        {Statements: []OpenLoopStatement{{SQL: "x"}}, Rate: 1, Duration: time.Millisecond},
	} {
		if _, err := OpenLoop(context.Background(), cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
