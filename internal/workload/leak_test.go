package workload

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestOpenLoopNoLeak: every issued statement runs on its own goroutine;
// OpenLoop must join them all before returning — including statements
// still in flight when the driver's duration (or its context) expires,
// and including ones that error.
func TestOpenLoopNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := OpenLoop(ctx, OpenLoopConfig{
		Statements: []OpenLoopStatement{{SQL: "q", Params: 1}},
		Rate:       400,
		Duration:   10 * time.Second, // cut short by cancel
		Seed:       3,
		Run: func(ctx context.Context, sql string, args []any) error {
			select {
			case <-time.After(20 * time.Millisecond):
			case <-ctx.Done():
			}
			if args[0].(int64)%3 == 0 {
				return errors.New("synthetic failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}
