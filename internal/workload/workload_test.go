package workload

import (
	"testing"

	"dbs3/internal/lera"
	"dbs3/internal/partition"
	"dbs3/internal/relation"
	"dbs3/internal/zipf"
)

func TestNewJoinDBValidation(t *testing.T) {
	if _, err := NewJoinDB(100, 10, 0, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := NewJoinDB(100, 15, 10, 0); err == nil {
		t.Error("BCard not multiple of d accepted")
	}
	if _, err := NewJoinDB(0, 10, 10, 0); err == nil {
		t.Error("zero ACard accepted")
	}
}

func TestJoinDBCardinalities(t *testing.T) {
	db, err := NewJoinDB(1000, 100, 20, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if db.A.Cardinality() != 1000 || db.B.Cardinality() != 100 || db.Br.Cardinality() != 100 {
		t.Fatalf("cardinalities: A=%d B=%d Br=%d", db.A.Cardinality(), db.B.Cardinality(), db.Br.Cardinality())
	}
	if db.A.Degree() != 20 || db.B.Degree() != 20 || db.Br.Degree() != 20 {
		t.Fatal("degrees wrong")
	}
}

func TestJoinDBSkewMatchesZipf(t *testing.T) {
	db, err := NewJoinDB(10000, 200, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := zipf.Sizes(10000, 20, 1)
	got := db.A.FragmentSizes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fragment %d size %d, want %d", i, got[i], want[i])
		}
	}
	// B must be uniform.
	for i, s := range db.B.FragmentSizes() {
		if s != 10 {
			t.Fatalf("B fragment %d size %d, want 10", i, s)
		}
	}
}

func TestJoinDBPlacementInvariants(t *testing.T) {
	db, err := NewJoinDB(500, 100, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	kIdx := JoinSchema.MustIndex("k")
	idIdx := JoinSchema.MustIndex("id")
	// A and B fragments i contain only keys = i (mod d).
	for i, frag := range db.A.Fragments {
		for _, tup := range frag {
			if tup[kIdx].AsInt()%10 != int64(i) {
				t.Fatalf("A fragment %d holds key %d", i, tup[kIdx].AsInt())
			}
		}
	}
	for i, frag := range db.B.Fragments {
		for _, tup := range frag {
			if tup[kIdx].AsInt()%10 != int64(i) {
				t.Fatalf("B fragment %d holds key %d", i, tup[kIdx].AsInt())
			}
		}
	}
	// Br fragments hold ids = i (mod d), and Br is the same multiset as B.
	for i, frag := range db.Br.Fragments {
		for _, tup := range frag {
			if tup[idIdx].AsInt()%10 != int64(i) {
				t.Fatalf("Br fragment %d holds id %d", i, tup[idIdx].AsInt())
			}
		}
	}
	if !db.B.Union().EqualMultiset(db.Br.Union()) {
		t.Error("B and Br differ as multisets")
	}
	// Every A key exists in B (guarantees the join-count oracle).
	bKeys := make(map[int64]bool)
	for _, frag := range db.B.Fragments {
		for _, tup := range frag {
			bKeys[tup[kIdx].AsInt()] = true
		}
	}
	for _, frag := range db.A.Fragments {
		for _, tup := range frag {
			if !bKeys[tup[kIdx].AsInt()] {
				t.Fatalf("A key %d has no B match", tup[kIdx].AsInt())
			}
		}
	}
}

func TestJoinDBPlansBind(t *testing.T) {
	db, err := NewJoinDB(500, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []lera.JoinAlgo{lera.NestedLoop, lera.HashJoin, lera.TempIndex} {
		if _, err := db.IdealJoinPlan(algo); err != nil {
			t.Errorf("IdealJoinPlan(%v): %v", algo, err)
		}
		if _, err := db.AssocJoinPlan(algo); err != nil {
			t.Errorf("AssocJoinPlan(%v): %v", algo, err)
		}
	}
}

func TestRelationsMap(t *testing.T) {
	db, err := NewJoinDB(100, 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rels := db.Relations()
	if len(rels) != 3 || rels["A"] == nil || rels["B"] == nil || rels["Br"] == nil {
		t.Fatalf("Relations = %v", rels)
	}
	if db.ExpectedJoinCount() != 100 {
		t.Errorf("ExpectedJoinCount = %d", db.ExpectedJoinCount())
	}
}

func TestVerifyJoinResultDetectsErrors(t *testing.T) {
	db, err := NewJoinDB(100, 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := JoinSchema.Concat(JoinSchema, "A.", "B.")
	mk := func(ak, aid, bk int64) relation.Tuple {
		return relation.NewTuple(
			relation.Int(ak), relation.Int(aid), relation.Str("a"),
			relation.Int(bk), relation.Int(0), relation.Str("b"),
		)
	}
	build := func(tuples ...relation.Tuple) *partition.Partitioned {
		p, err := partition.FromFragments("Res", schema, nil, [][]relation.Tuple{tuples}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Wrong cardinality.
	if err := db.VerifyJoinResult(build(mk(1, 1, 1))); err == nil {
		t.Error("wrong cardinality accepted")
	}
	// Right cardinality, mismatched keys.
	bad := make([]relation.Tuple, 100)
	for i := range bad {
		bad[i] = mk(int64(i), int64(i), int64(i+1))
	}
	if err := db.VerifyJoinResult(build(bad...)); err == nil {
		t.Error("mismatched keys accepted")
	}
	// Duplicate A ids.
	dup := make([]relation.Tuple, 100)
	for i := range dup {
		dup[i] = mk(5, 7, 5)
	}
	if err := db.VerifyJoinResult(build(dup...)); err == nil {
		t.Error("duplicate ids accepted")
	}
	// A correct result passes (constructed from the data itself).
	good := make([]relation.Tuple, 0, 100)
	kIdx, idIdx := JoinSchema.MustIndex("k"), JoinSchema.MustIndex("id")
	_ = idIdx
	bByKey := map[int64]relation.Tuple{}
	for _, frag := range db.B.Fragments {
		for _, tup := range frag {
			bByKey[tup[kIdx].AsInt()] = tup
		}
	}
	for _, frag := range db.A.Fragments {
		for _, a := range frag {
			good = append(good, a.Concat(bByKey[a[kIdx].AsInt()]))
		}
	}
	if err := db.VerifyJoinResult(build(good...)); err != nil {
		t.Errorf("correct result rejected: %v", err)
	}
}

var _ = lera.NestedLoop
