// Package workload generates the paper's experimental databases and plans
// (§5.3-5.4): pairs of relations A and B partitioned in d fragments where
// A's fragment cardinalities follow a Zipf distribution (tuple placement
// skew) and B is uniform, plus the two Lera-par plans the experiments run —
// IdealJoin (both operands co-partitioned on the join attribute, triggered)
// and AssocJoin (B dynamically repartitioned into a pipelined join).
package workload

import (
	"fmt"

	"dbs3/internal/lera"
	"dbs3/internal/partition"
	"dbs3/internal/relation"
	"dbs3/internal/zipf"
)

// JoinSchema is the schema of the generated join relations: the join key k,
// a globally unique id, and a payload string.
var JoinSchema = relation.MustSchema(
	relation.Column{Name: "k", Type: relation.TInt},
	relation.Column{Name: "id", Type: relation.TInt},
	relation.Column{Name: "pad", Type: relation.TString},
)

// JoinDB is one experimental database: relation A of ACard tuples with
// Zipf(Theta) fragment sizes, and relation B of BCard tuples, uniform. B
// exists in two placements: "B" partitioned on the join key k (IdealJoin
// needs co-partitioning) and "Br" partitioned on id (AssocJoin repartitions
// it at run time). Both placements hold the same tuple multiset. Every A
// tuple matches exactly one B tuple, so any correct join returns exactly
// ACard tuples — the correctness oracle used by tests.
type JoinDB struct {
	ACard, BCard int
	D            int
	Theta        float64

	A, B, Br *partition.Partitioned
	// AKeyPart is the shared partitioning function on k (modulo D).
	AKeyPart *partition.Mod
}

// NewJoinDB generates a database. BCard must be a multiple of D so that
// every fragment of B holds the same number of keys (the paper's unskewed
// operand); ACard is free.
func NewJoinDB(aCard, bCard, d int, theta float64) (*JoinDB, error) {
	if d <= 0 {
		return nil, fmt.Errorf("workload: degree must be positive, got %d", d)
	}
	if bCard%d != 0 {
		return nil, fmt.Errorf("workload: BCard %d must be a multiple of the degree %d", bCard, d)
	}
	if bCard <= 0 || aCard <= 0 {
		return nil, fmt.Errorf("workload: cardinalities must be positive")
	}
	bPerFrag := bCard / d

	db := &JoinDB{ACard: aCard, BCard: bCard, D: d, Theta: theta}

	modK, err := partition.NewMod(JoinSchema, "k", d)
	if err != nil {
		return nil, err
	}
	db.AKeyPart = modK

	// B partitioned on k: fragment i holds keys {i + j*d : j in [0,bPerFrag)}.
	bFrags := make([][]relation.Tuple, d)
	id := int64(0)
	for i := 0; i < d; i++ {
		frag := make([]relation.Tuple, 0, bPerFrag)
		for j := 0; j < bPerFrag; j++ {
			k := int64(i + j*d)
			frag = append(frag, relation.NewTuple(relation.Int(k), relation.Int(id), relation.Str("b")))
			id++
		}
		bFrags[i] = frag
	}
	db.B, err = partition.FromFragments("B", JoinSchema, []string{"k"}, bFrags, 1)
	if err != nil {
		return nil, err
	}

	// Br: the same tuples placed by id (id mod d), i.e. NOT on the join key.
	modID, err := partition.NewMod(JoinSchema, "id", d)
	if err != nil {
		return nil, err
	}
	brFrags := make([][]relation.Tuple, d)
	for _, frag := range bFrags {
		for _, t := range frag {
			fi := modID.FragmentOf(t)
			brFrags[fi] = append(brFrags[fi], t)
		}
	}
	db.Br, err = partition.FromFragments("Br", JoinSchema, []string{"id"}, brFrags, 1)
	if err != nil {
		return nil, err
	}

	// A: fragment i holds sizes[i] tuples whose keys cycle over fragment
	// i's B keys, so each A tuple matches exactly one B tuple and lands in
	// fragment i under k mod d (tuple placement skew via cardinality).
	sizes := zipf.Sizes(aCard, d, theta)
	aFrags := make([][]relation.Tuple, d)
	aid := int64(0)
	for i := 0; i < d; i++ {
		frag := make([]relation.Tuple, 0, sizes[i])
		for j := 0; j < sizes[i]; j++ {
			k := int64(i + (j%bPerFrag)*d)
			frag = append(frag, relation.NewTuple(relation.Int(k), relation.Int(aid), relation.Str("a")))
			aid++
		}
		aFrags[i] = frag
	}
	db.A, err = partition.FromFragments("A", JoinSchema, []string{"k"}, aFrags, 1)
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Resolver returns plan-binding metadata for the database.
func (db *JoinDB) Resolver() lera.MapResolver {
	modID, _ := partition.NewMod(JoinSchema, "id", db.D)
	return lera.MapResolver{
		"A":  {Schema: JoinSchema, Degree: db.D, FragSizes: db.A.FragmentSizes(), Part: db.AKeyPart},
		"B":  {Schema: JoinSchema, Degree: db.D, FragSizes: db.B.FragmentSizes(), Part: db.AKeyPart},
		"Br": {Schema: JoinSchema, Degree: db.D, FragSizes: db.Br.FragmentSizes(), Part: modID},
	}
}

// Relations returns the name->partitioned map the engine consumes.
func (db *JoinDB) Relations() map[string]*partition.Partitioned {
	return map[string]*partition.Partitioned{"A": db.A, "B": db.B, "Br": db.Br}
}

// IdealJoinGraph builds the paper's IdealJoin plan (Figure 10): a triggered
// join of the co-partitioned A and B, materialized as Res.
func IdealJoinGraph(algo lera.JoinAlgo) *lera.Graph {
	g := lera.NewGraph()
	j := g.JoinBound("join", "A", "B", []string{"k"}, []string{"k"}, algo)
	st := g.Store("store", "Res")
	g.ConnectSame(j, st)
	return g
}

// AssocJoinGraph builds the paper's AssocJoin plan (Figure 11): transmit
// reads Br (placed on id) and redistributes its tuples on k into a pipelined
// join against A, materialized as Res.
func AssocJoinGraph(algo lera.JoinAlgo) *lera.Graph {
	g := lera.NewGraph()
	tr := g.Transmit("transmit", "Br")
	j := g.JoinPipelined("join", "A", []string{"k"}, []string{"k"}, algo)
	st := g.Store("store", "Res")
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, st)
	return g
}

// IdealJoinPlan binds the IdealJoin plan against the database.
func (db *JoinDB) IdealJoinPlan(algo lera.JoinAlgo) (*lera.Plan, error) {
	return lera.Bind(IdealJoinGraph(algo), db.Resolver())
}

// AssocJoinPlan binds the AssocJoin plan against the database.
func (db *JoinDB) AssocJoinPlan(algo lera.JoinAlgo) (*lera.Plan, error) {
	return lera.Bind(AssocJoinGraph(algo), db.Resolver())
}

// ExpectedJoinCount is the join result cardinality oracle: every A tuple
// matches exactly one B tuple.
func (db *JoinDB) ExpectedJoinCount() int { return db.ACard }

// VerifyJoinResult checks a materialized join result against the oracle:
// cardinality, key equality on both sides, and the multiset of A-side ids
// (each A id appears exactly once).
func (db *JoinDB) VerifyJoinResult(res *partition.Partitioned) error {
	if res.Cardinality() != db.ExpectedJoinCount() {
		return fmt.Errorf("workload: join produced %d tuples, want %d", res.Cardinality(), db.ExpectedJoinCount())
	}
	schema := res.Schema
	ak := schema.MustIndex("A.k")
	aid := schema.MustIndex("A.id")
	var bk int
	if i, ok := schema.Index("B.k"); ok {
		bk = i
	} else {
		bk = schema.MustIndex("probe.k")
	}
	seen := make(map[int64]bool, db.ACard)
	for fi, frag := range res.Fragments {
		for _, t := range frag {
			if t[ak].AsInt() != t[bk].AsInt() {
				return fmt.Errorf("workload: joined tuple %v has mismatched keys", t)
			}
			id := t[aid].AsInt()
			if seen[id] {
				return fmt.Errorf("workload: A id %d joined twice", id)
			}
			seen[id] = true
			_ = fi
		}
	}
	return nil
}
