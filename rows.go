package dbs3

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"dbs3/internal/core"
	"dbs3/internal/lera"
	"dbs3/internal/relation"
)

// Rows is a streaming query result cursor. The engine's final store node
// feeds rows into a bounded sink as its instances produce them, so the first
// row is available long before the query finishes and a large result never
// has to fit in memory at once. Iterate database/sql-style:
//
//	rows, err := db.QueryContext(ctx, sql, nil)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var a, b int64
//		if err := rows.Scan(&a, &b); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Close mid-iteration cancels the query's context: the engine aborts,
// producing threads unwind, and — when a QueryManager is installed — the
// query's thread reservation returns to the shared budget immediately, not
// when the abandoned result would have finished. A Rows is not safe for
// concurrent use by multiple goroutines; the query execution behind it is
// parallel regardless.
type Rows struct {
	cols        []string
	types       []string
	threads     int
	utilization float64

	ch     chan []any
	done   chan struct{} // closed by the execution goroutine when it settles
	cancel context.CancelFunc
	parent context.Context // the caller's context, to tell its cancellation from Close's

	cur       []any
	err       error
	closed    bool
	exhausted bool
	once      sync.Once

	// Written by the execution goroutine before close(done).
	execErr      error
	operators    []OperatorStats
	chainThreads []int
	spilledBytes int64
	spillPasses  int64
}

// Columns names the result columns, known from the prepared plan before the
// first row arrives.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// ColumnTypes reports the result column types ("INT" or "STRING"), aligned
// with Columns and likewise known before the first row.
func (r *Rows) ColumnTypes() []string { return append([]string(nil), r.types...) }

// Threads is the total degree of parallelism the scheduler allocated.
func (r *Rows) Threads() int { return r.threads }

// Utilization is the processor utilization the scheduler saw: the Options
// value, or — when a QueryManager is installed — the smoothed measured load
// at admission if higher.
func (r *Rows) Utilization() float64 { return r.utilization }

// Next advances to the next row, blocking until one is produced, the result
// is exhausted, or the query fails or is cancelled. It returns false at the
// end of the result; check Err to distinguish exhaustion from failure.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	row, ok := <-r.ch
	if !ok {
		<-r.done
		r.err = r.execErr
		r.exhausted = true
		r.cur = nil // Scan after the last row is an error, not a stale re-read
		r.release()
		return false
	}
	r.cur = row
	return true
}

// Scan copies the current row into dest, one pointer per column: *int64,
// *int, *string or *any.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("dbs3: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("dbs3: Scan got %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		switch p := d.(type) {
		case *any:
			*p = r.cur[i]
		case *int64:
			v, ok := r.cur[i].(int64)
			if !ok {
				return fmt.Errorf("dbs3: column %s is %T, not int64", r.cols[i], r.cur[i])
			}
			*p = v
		case *int:
			v, ok := r.cur[i].(int64)
			if !ok {
				return fmt.Errorf("dbs3: column %s is %T, not int64", r.cols[i], r.cur[i])
			}
			*p = int(v)
		case *string:
			v, ok := r.cur[i].(string)
			if !ok {
				return fmt.Errorf("dbs3: column %s is %T, not string", r.cols[i], r.cur[i])
			}
			*p = v
		default:
			return fmt.Errorf("dbs3: unsupported Scan destination %T", d)
		}
	}
	return nil
}

// Err returns the error that terminated the query, if any: an operator
// error, or the context's error when the query was cancelled externally.
// The one cancellation that is not an error is the one Close itself causes
// — a deliberate early close of a healthy query leaves Err nil.
func (r *Rows) Err() error { return r.err }

// Close cancels the query if it is still running, waits for the engine to
// unwind (threads are back in the manager budget when Close returns), and
// releases the cursor. Closing an exhausted or already-closed cursor does
// no further work. The cancellation Close itself causes is not an error,
// but a failure that already terminated the query (an operator error, an
// external cancellation) is returned rather than swallowed, and stays
// visible on Err — Close and Err always agree. Always close a cursor you
// do not fully drain: an abandoned open cursor pins its query's threads on
// sink backpressure forever.
func (r *Rows) Close() error {
	r.once.Do(func() {
		r.closed = true
		r.cur = nil
		// Sample the caller's context before cancelling: a parent that
		// dies while we wait for the engine to unwind did not abort the
		// query — Close did, deliberately.
		external := r.parent.Err() != nil
		r.cancel()
		<-r.done
		// Close's own cancel can only ever surface as context.Canceled
		// with the caller's context live at cancel time; anything else —
		// an operator error, an external cancellation or deadline that
		// already aborted the query — is a real failure.
		if r.execErr != nil && (external || !errors.Is(r.execErr, context.Canceled)) {
			r.err = r.execErr
		}
	})
	return r.err
}

// release marks an exhausted cursor closed and frees its context resources.
func (r *Rows) release() {
	r.once.Do(func() {
		r.closed = true
		r.cancel()
	})
}

// Operators reports per-operator scheduling statistics. The counters are
// complete once iteration ended normally (Next returned false with a nil
// Err); an aborted or failed query reports none.
func (r *Rows) Operators() []OperatorStats {
	select {
	case <-r.done:
		return append([]OperatorStats(nil), r.operators...)
	default:
		return nil
	}
}

// ChainThreads is the per-chain thread trace of a managed multi-chain query:
// the totals granted at each materialization-point renegotiation, in chain
// order (see Options.Materialize). Empty for single-chain statements,
// explicit-thread executions and unmanaged databases; available once the
// execution settled.
func (r *Rows) ChainThreads() []int {
	select {
	case <-r.done:
		return append([]int(nil), r.chainThreads...)
	default:
		return nil
	}
}

// SpillStats reports the query's larger-than-memory activity under a memory
// budget: bytes written to spill runs and partition/merge passes taken
// across all operators. Both zero when the query fit its grant (or ran
// unbounded); available once the execution settled.
func (r *Rows) SpillStats() (bytes, passes int64) {
	select {
	case <-r.done:
		return r.spilledBytes, r.spillPasses
	default:
		return 0, 0
	}
}

// All drains the remaining rows into a materialized Result — the pre-cursor
// shape of a query answer — and closes the cursor. Rows already consumed via
// Next are not included. Calling All on a cursor that was closed before
// exhaustion is an error (the missing rows are unrecoverable), not an empty
// result.
func (r *Rows) All() (*Result, error) {
	if r.closed && !r.exhausted {
		return nil, fmt.Errorf("dbs3: All called on a closed cursor")
	}
	res := &Result{Columns: r.Columns(), Threads: r.threads, Utilization: r.utilization}
	for r.Next() {
		res.Data = append(res.Data, r.cur)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	res.Operators = r.Operators()
	res.ChainThreads = r.ChainThreads()
	res.SpilledBytes, res.SpillPasses = r.SpillStats()
	return res, nil
}

// Result is a fully materialized query result: plain Go values plus
// execution statistics. Produced by Rows.All and Database.QueryAll for
// callers (tests, examples, small interactive answers) that want the whole
// table at once.
type Result struct {
	// Columns names the result columns.
	Columns []string
	// Data holds one row per slice; values are int64 or string.
	Data [][]any
	// Threads is the total degree of parallelism used.
	Threads int
	// Utilization is the processor utilization the scheduler saw.
	Utilization float64
	// Operators reports per-operator scheduling statistics.
	Operators []OperatorStats
	// ChainThreads is the per-chain renegotiated thread trace of a managed
	// multi-chain query (see Rows.ChainThreads).
	ChainThreads []int
	// SpilledBytes and SpillPasses total the query's larger-than-memory
	// activity under a memory budget (see Rows.SpillStats).
	SpilledBytes int64
	SpillPasses  int64
}

// FormatStats renders the row-count/thread line, the per-chain renegotiated
// thread trace of a multi-chain query, and the per-operator scheduling
// counters that footer a query answer — shared by Result.String and
// streaming printers (cmd/dbs3) that count rows as they drain a cursor.
func FormatStats(rowCount, threads int, chainThreads []int, ops []OperatorStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%d rows, %d threads)\n", rowCount, threads)
	if len(chainThreads) > 1 {
		fmt.Fprintf(&b, "  chain threads (readmitted at each boundary): %v\n", chainThreads)
	}
	var spilled, passes int64
	for _, op := range ops {
		fmt.Fprintf(&b, "  %-12s threads=%-3d strategy=%-6s instances=%-5d activations=%-8d emitted=%-8d secondary=%d",
			op.Name, op.Threads, op.Strategy, op.Instances, op.Activations, op.Emitted, op.SecondaryPicks)
		if op.SpilledBytes > 0 || op.SpillPasses > 0 {
			fmt.Fprintf(&b, " spilled=%dB passes=%d", op.SpilledBytes, op.SpillPasses)
		}
		b.WriteByte('\n')
		spilled += op.SpilledBytes
		passes += op.SpillPasses
	}
	if spilled > 0 || passes > 0 {
		fmt.Fprintf(&b, "  spill: %d bytes over %d pass(es) — working memory exceeded the grant; results are unaffected\n", spilled, passes)
	}
	return b.String()
}

// rowSink adapts the engine's tuple stream to the cursor channel, converting
// tuples to plain Go values on the producing pool threads. Push blocks on
// the bounded channel — backpressure — and unblocks when the query context
// is cancelled, which is what lets Close abort a query whose consumer
// stopped reading.
type rowSink struct {
	ctx context.Context
	ch  chan<- []any
}

func (s *rowSink) Push(t relation.Tuple) error {
	select {
	case s.ch <- rowOf(t):
		return nil
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

// PushBatch implements core.RowBatchSink: the vectorized store path delivers
// whole tuple runs here. Conversion happens before any channel send, so the
// producing pool thread does its allocation work outside the backpressure
// wait; each row still travels the bounded channel individually, keeping the
// cursor's first-row latency and Close-abort semantics unchanged.
func (s *rowSink) PushBatch(ts []relation.Tuple) error {
	for _, t := range ts {
		select {
		case s.ch <- rowOf(t):
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	}
	return nil
}

// rowOf converts one tuple to the cursor's plain-Go row form.
func rowOf(t relation.Tuple) []any {
	row := make([]any, len(t))
	for i, v := range t {
		if v.Kind() == relation.TInt {
			row[i] = v.AsInt()
		} else {
			row[i] = v.AsString()
		}
	}
	return row
}

// operatorStats snapshots per-operator counters after an execution settled.
func operatorStats(plan *lera.Plan, res *core.Result) []OperatorStats {
	out := make([]OperatorStats, 0, len(plan.Order))
	for _, id := range plan.Order {
		st := res.Stats[id]
		if st == nil {
			continue
		}
		out = append(out, OperatorStats{
			Name:           plan.Graph.Nodes[id].Name,
			Threads:        res.Alloc.Node[id],
			Strategy:       res.Alloc.Strategy[id].String(),
			Instances:      plan.Nodes[id].Degree,
			Activations:    st.Activations.Load(),
			Emitted:        st.Emitted.Load(),
			SecondaryPicks: st.SecondaryPicks.Load(),
			SpilledBytes:   st.SpilledBytes.Load(),
			SpillPasses:    st.SpillPasses.Load(),
		})
	}
	return out
}
