package dbs3

import "testing"

func TestWisconsinSuiteRuns(t *testing.T) {
	const card = 2000
	db := New()
	if err := db.CreateWisconsinBenchmark(card, 8, 7); err != nil {
		t.Fatal(err)
	}
	for _, q := range WisconsinSuite(card) {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			rows, err := db.QueryAll(q.SQL, &Options{Threads: 4})
			if err != nil {
				t.Fatalf("%s: %v", q.SQL, err)
			}
			if len(rows.Data) != q.ExpectRows {
				t.Errorf("%s: %d rows, want %d", q.Name, len(rows.Data), q.ExpectRows)
			}
		})
	}
}

func TestWisconsinSuiteUnderEveryStrategy(t *testing.T) {
	const card = 1000
	db := New()
	if err := db.CreateWisconsinBenchmark(card, 4, 11); err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{"random", "lpt", "auto"} {
		for _, q := range WisconsinSuite(card) {
			rows, err := db.QueryAll(q.SQL, &Options{Threads: 3, Strategy: strat})
			if err != nil {
				t.Fatalf("%s/%s: %v", q.Name, strat, err)
			}
			if len(rows.Data) != q.ExpectRows {
				t.Errorf("%s/%s: %d rows, want %d", q.Name, strat, len(rows.Data), q.ExpectRows)
			}
		}
	}
}

func TestWisconsinSuiteAggregatesCorrect(t *testing.T) {
	const card = 1000
	db := New()
	if err := db.CreateWisconsinBenchmark(card, 4, 3); err != nil {
		t.Fatal(err)
	}
	// COUNT grouped by onePercent: 100 groups of card/100 each.
	rows, err := db.QueryAll("SELECT onePercent, COUNT(*) FROM tenktup1 GROUP BY onePercent", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows.Data {
		if r[1].(int64) != card/100 {
			t.Errorf("group %v has count %v, want %d", r[0], r[1], card/100)
		}
	}
	// MIN(unique1) grouped by two: minima are 0 and 1.
	rows, err = db.QueryAll("SELECT two, MIN(unique1) FROM tenktup1 GROUP BY two", nil)
	if err != nil {
		t.Fatal(err)
	}
	mins := map[int64]int64{}
	for _, r := range rows.Data {
		mins[r[0].(int64)] = r[1].(int64)
	}
	if mins[0] != 0 || mins[1] != 1 {
		t.Errorf("minima = %v, want {0:0, 1:1}", mins)
	}
}

func TestCreateWisconsinBenchmarkValidation(t *testing.T) {
	db := New()
	if err := db.CreateWisconsinBenchmark(150, 4, 1); err == nil {
		t.Error("non-multiple-of-100 cardinality accepted")
	}
	if err := db.CreateWisconsinBenchmark(0, 4, 1); err == nil {
		t.Error("zero cardinality accepted")
	}
}
