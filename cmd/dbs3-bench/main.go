// Command dbs3-bench regenerates the paper's figures on the virtual-time
// simulator and prints them as text tables (one row per X value, one column
// per series).
//
// Usage:
//
//	dbs3-bench            # all figures
//	dbs3-bench -fig 13    # one figure (8, 9, 12..19)
package main

import (
	"flag"
	"fmt"
	"os"

	"dbs3/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8, 9, 12-19, or all")
	flag.Parse()

	if *fig == "all" {
		for _, f := range experiments.All() {
			fmt.Println(f.Table())
		}
		return
	}
	f, err := experiments.ByID(*fig)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(f.Table())
}
