// Command dbs3lint runs the repo's concurrency-invariant analyzers
// (internal/analysis) over Go packages. Two modes:
//
// Standalone (the usual one):
//
//	go run ./cmd/dbs3lint ./...
//	go run ./cmd/dbs3lint -analyzers lockio,ctxflow ./internal/cluster
//
// Loads the named packages — test files included unless -tests=false —
// type-checks them against the build cache's export data, and prints one
// line per finding. Exit status: 0 clean, 1 findings, 2 operational error.
//
// Vet tool (per-package, driven by the go command's cache):
//
//	go vet -vettool=$(go env GOPATH)/bin/dbs3lint ./...
//
// Implements the unitchecker protocol by hand: `-V=full` for the content
// hash, then one invocation per package with the vet config file as the
// sole argument. Suppression in both modes is the
// //dbs3lint:ignore <analyzer> <reason> directive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"dbs3/internal/analysis"
)

func main() {
	// The go command probes vet tools with -V=full (content hash) and
	// -flags (supported analyzer flags; dbs3lint exposes none through
	// vet) before the per-package invocations.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Println("dbs3lint version v1.0.0-dbs3")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// A single *.cfg argument is the vet-tool calling convention.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetMode(os.Args[1]))
	}
	os.Exit(standalone())
}

func standalone() int {
	var (
		tests = flag.Bool("tests", true, "analyze _test.go files and _test packages too")
		names = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		list  = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dbs3lint [flags] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		printAnalyzers(flag.CommandLine.Output())
	}
	flag.Parse()

	if *list {
		printAnalyzers(os.Stdout)
		return 0
	}
	var sel []string
	if *names != "" {
		sel = strings.Split(*names, ",")
	}
	analyzers, unknown, ok := analysis.ByName(sel)
	if !ok {
		fmt.Fprintf(os.Stderr, "dbs3lint: unknown analyzer %q\n", unknown)
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbs3lint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, *tests, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbs3lint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbs3lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dbs3lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func printAnalyzers(w io.Writer) {
	for _, a := range analysis.All() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, doc)
	}
}

// vetConfig is the JSON the go command writes for each package when
// invoking a -vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbs3lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dbs3lint: %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even though the
	// dbs3 analyzers exchange none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "dbs3lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	testFiles := make(map[*ast.File]bool)
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "dbs3lint: %v\n", err)
			return 1
		}
		files = append(files, f)
		testFiles[f] = strings.HasSuffix(name, "_test.go")
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "dbs3lint: %v\n", err)
		return 1
	}
	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TestFiles: testFiles,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbs3lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2 // the exit code `go vet` treats as "diagnostics reported"
	}
	return 0
}
