package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"dbs3"
	"dbs3/internal/cluster"
	"dbs3/internal/server"
	"dbs3/internal/workload"
)

// benchServeMain is the `dbs3 bench-serve` subcommand: an end-to-end load
// test of the scatter-gather tier. It boots N sharded worker nodes and a
// coordinator in one process (real TCP listeners, real wire protocol), then
// drives the coordinator's HTTP front end with an open-loop, Zipf-skewed
// arrival stream — hundreds of concurrent client statements — and reports
// latency percentiles, throughput and the cluster counters as JSON
// (BENCH_serve.json in CI).
func benchServeMain(args []string) {
	fs := flag.NewFlagSet("dbs3 bench-serve", flag.ExitOnError)
	var (
		nodes    = fs.Int("nodes", 3, "worker nodes to boot")
		budget   = fs.Int("budget", 8, "thread budget per worker")
		wisc     = fs.Int("wisc", 20_000, "wisconsin cardinality (pre-shard)")
		aCard    = fs.Int("acard", 5_000, "join relation A cardinality (pre-shard)")
		bCard    = fs.Int("bcard", 5_000, "join relation B cardinality (pre-shard)")
		degree   = fs.Int("degree", 8, "degree of partitioning per node")
		rate     = fs.Float64("rate", 150, "open-loop arrival rate, statements/second")
		duration = fs.Duration("duration", 10*time.Second, "arrival window")
		inflight = fs.Int("inflight", 512, "max concurrently outstanding statements")
		theta    = fs.Float64("theta", 0.5, "Zipf skew of statement popularity and argument values")
		seed     = fs.Int64("seed", 42, "sampler seed")
		token    = fs.String("token", "bench-secret", "bearer token exercised on every hop (empty = no auth)")
		out      = fs.String("o", "", "write the JSON report to this file as well as stdout")
	)
	fs.Parse(args)

	// Boot the sharded workers.
	dist := map[string]string{"wisc": "unique2", "A": "k", "B": "k", "Br": "k"}
	urls := make([]string, *nodes)
	servers := make([]*http.Server, *nodes)
	for i := 0; i < *nodes; i++ {
		db := dbs3.New()
		if err := db.CreateWisconsin("wisc", *wisc, *degree, "unique2", 42); err != nil {
			fatal(err)
		}
		if err := db.CreateJoinPair("", *aCard, *bCard, *degree, 0.5); err != nil {
			fatal(err)
		}
		for rel, col := range dist {
			if err := db.ShardRelation(rel, col, i, *nodes); err != nil {
				fatal(err)
			}
		}
		m := db.Manager(dbs3.ManagerConfig{Budget: *budget})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		urls[i] = "http://" + ln.Addr().String()
		servers[i] = &http.Server{Handler: server.New(db, m, server.Config{AuthToken: *token})}
		go servers[i].Serve(ln)
	}

	// Boot the coordinator on its own listener. The benchmark process's
	// lifetime is the coordinator's lifecycle.
	ctx := context.Background()
	coord, err := cluster.New(ctx, cluster.Config{Nodes: urls, Token: *token})
	if err != nil {
		fatal(err)
	}
	defer coord.Close()
	coordLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	coordSrv := &http.Server{Handler: coord.Handler()}
	go coordSrv.Serve(coordLn)
	coordURL := "http://" + coordLn.Addr().String()
	fmt.Fprintf(os.Stderr, "bench-serve: %d workers + coordinator on %s; %v at %.0f/s, theta %.2f\n",
		*nodes, coordURL, *duration, *rate, *theta)

	// Clients share one transport sized for the in-flight bound, so the
	// open loop measures the cluster, not connection churn.
	transport := &http.Transport{MaxIdleConns: *inflight, MaxIdleConnsPerHost: *inflight}
	httpc := &http.Client{Transport: transport}
	client := &server.Client{Base: coordURL, HTTP: httpc, Columnar: true, Token: *token}

	mix := []workload.OpenLoopStatement{
		{SQL: "SELECT * FROM wisc WHERE unique1 < ?", Params: 1},
		{SQL: "SELECT ten, COUNT(*) FROM wisc GROUP BY ten", Params: 0},
		{SQL: "SELECT two, SUM(unique1) FROM wisc WHERE unique2 < ? GROUP BY two", Params: 1},
		{SQL: "SELECT A.id FROM A JOIN B ON A.k = B.k WHERE B.id < ?", Params: 1},
	}
	res, err := workload.OpenLoop(ctx, workload.OpenLoopConfig{
		Statements:  mix,
		Rate:        *rate,
		Duration:    *duration,
		MaxInFlight: *inflight,
		ArgDomain:   *wisc / 10,
		Theta:       *theta,
		Seed:        *seed,
		Run: func(ctx context.Context, sql string, args []any) error {
			stream, err := client.Query(ctx, sql, args, nil)
			if err != nil {
				return err
			}
			defer stream.Close()
			for stream.Next() {
			}
			return stream.Err()
		},
		// A worker's bounded admission queue rejects with 503 at overload;
		// through the coordinator that surfaces as a node error carrying the
		// queue-full text. Shedding at an over-capacity rate is the measured
		// outcome of an open loop, not a broken run.
		Shed: func(err error) bool {
			return strings.Contains(err.Error(), "admission queue full") ||
				strings.Contains(err.Error(), "status 503")
		},
	})
	if err != nil {
		fatal(err)
	}
	coord.Poll(ctx)
	st := coord.Stats()

	report := map[string]any{
		"bench": "serve",
		"config": map[string]any{
			"nodes":    *nodes,
			"budget":   *budget,
			"wisc":     *wisc,
			"rate":     *rate,
			"duration": duration.String(),
			"inflight": *inflight,
			"theta":    *theta,
			"mix":      len(mix),
		},
		"openLoop": res,
		"cluster": map[string]any{
			"healthy":            st.Healthy,
			"queries":            st.Queries,
			"failures":           st.Failures,
			"clusterUtilization": st.ClusterUtilization,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
	}

	shCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	coordSrv.Shutdown(shCtx)
	for _, s := range servers {
		s.Shutdown(shCtx)
	}
	if res.Failed > 0 {
		fatal(fmt.Errorf("bench-serve: %d of %d statements failed", res.Failed, res.Issued))
	}
}
