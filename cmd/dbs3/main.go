// Command dbs3 runs ESQL queries against a generated demo database on the
// adaptive parallel execution engine, printing results and per-operator
// scheduling statistics. Results stream through the cursor API: the first
// rows print while the query is still executing, and -limit stops printing
// (but keeps counting) once reached.
//
// The demo database holds:
//
//	wisc        Wisconsin benchmark relation (-wisc tuples, -degree fragments)
//	A, B, Br    the paper's join pair (-acard/-bcard tuples, Zipf -skew);
//	            A and B are co-partitioned on k, Br is placed on id
//
// Usage:
//
//	dbs3 -q "SELECT * FROM A JOIN B ON A.k = B.k" -threads 8 -strategy lpt
//	dbs3 -q "SELECT ten, COUNT(*) FROM wisc GROUP BY ten"
//	dbs3 -q "SELECT * FROM A JOIN Br ON A.k = Br.k" -explain
//
// Batch mode fires many statements concurrently through a QueryManager,
// demonstrating the shared thread budget, the measured-utilization feedback
// into each query's scheduler ([Rahm93]), and the plan cache amortizing
// compilation across repeated statements:
//
//	dbs3 -q "SELECT * FROM A JOIN B ON A.k = B.k; SELECT ten, COUNT(*) FROM wisc GROUP BY ten" \
//	     -concurrency 8 -repeat 20 -budget 16 -priority batch
//
// WHERE comparisons accept `?` placeholders bound per execution through the
// library API and the serve-mode wire protocol.
//
// Subcommands:
//
//	dbs3 serve -addr 127.0.0.1:8080 -budget 16 -queue 64
//	    Serve the database over HTTP (JSON wire protocol): POST /query
//	    streams rows as NDJSON while the engine produces them, POST
//	    /prepare + POST /stmt/{id}/exec reuse one compiled plan across
//	    executions (with `?` placeholder args), GET /stats reports the
//	    manager counters, and a client disconnect cancels its query and
//	    returns the threads to the budget. Data comes from the generated
//	    demo relations and/or CSV files (-csv data.csv -csvkey col).
//
//	dbs3 coord -addr 127.0.0.1:8090 -nodes http://h1:8080,http://h2:8080 -token s3cret
//	    Run the scatter-gather query coordinator over serve nodes started
//	    with -shards N -shard i (and the same -token): the same wire
//	    protocol as one node, but queries compile once, fan out to every
//	    shard, and the partial streams merge at the coordinator — union
//	    for selections/joins, group-wise merge aggregation for GROUP BY.
//	    The coordinator polls each node's /stats and folds the other
//	    nodes' measured load into every fan-out subquery's utilization,
//	    extending the [Rahm93] feedback loop across machines.
//
//	dbs3 bench-serve -nodes 3 -rate 300 -duration 10s -o BENCH_serve.json
//	    Boot an in-process sharded cluster and drive its coordinator with
//	    an open-loop Zipf-skewed arrival stream; report latency
//	    percentiles and throughput as JSON.
//
//	dbs3 dump -rel wisc -o wisc.csv
//	    Write a demo relation as typed CSV — the format -csv loads back.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbs3"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "coord":
			coordMain(os.Args[2:])
			return
		case "bench-serve":
			benchServeMain(os.Args[2:])
			return
		case "dump":
			dumpMain(os.Args[2:])
			return
		}
	}
	var (
		query       = flag.String("q", "", "ESQL statement(s) to execute; ';' separates statements in batch mode")
		threads     = flag.Int("threads", 0, "degree of parallelism (0 = scheduler decides)")
		strategy    = flag.String("strategy", "auto", "consumption strategy: auto, random, lpt")
		joinAlgo    = flag.String("join", "hash", "join algorithm: hash, nested-loop, temp-index")
		priority    = flag.String("priority", "interactive", "admission class under the manager: interactive, batch")
		materialize = flag.Bool("materialize", false, "insert a materialization point before aggregation/projection (two chains; the manager renegotiates threads at the boundary)")
		batchGrain  = flag.Int("batchgrain", 0, "tuples per queue push on the pipelined data plane (0 = engine default, 1 = per-tuple pushes)")
		explain     = flag.Bool("explain", false, "print the parallel plan (DOT) instead of executing")
		limit       = flag.Int("limit", 20, "maximum rows to print (the rest are drained and counted, not shown)")
		wisc        = flag.Int("wisc", 10_000, "wisconsin relation cardinality")
		aCard       = flag.Int("acard", 10_000, "join relation A cardinality")
		bCard       = flag.Int("bcard", 1_000, "join relation B cardinality")
		degree      = flag.Int("degree", 20, "degree of partitioning")
		skew        = flag.Float64("skew", 0, "Zipf skew of A's fragment sizes (0..1)")
		mem         = flag.Int64("mem", 0, "working-memory budget in bytes: blocking operators spill to disk beyond it (0 = unlimited); in batch mode it is the manager's machine-wide memory budget")
		concurrency = flag.Int("concurrency", 1, "batch mode: workers firing statements through the QueryManager")
		repeat      = flag.Int("repeat", 10, "batch mode: executions of each statement per worker")
		budget      = flag.Int("budget", 0, "batch mode: manager thread budget (0 = GOMAXPROCS)")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage:\n")
		fmt.Fprintf(out, "  dbs3 -q <statement> [flags]   run statements against the demo database\n")
		fmt.Fprintf(out, "  dbs3 serve [flags]            serve the database over HTTP (see 'dbs3 serve -h')\n")
		fmt.Fprintf(out, "  dbs3 coord [flags]            scatter-gather coordinator over serve nodes (see 'dbs3 coord -h')\n")
		fmt.Fprintf(out, "  dbs3 bench-serve [flags]      open-loop load test of an in-process cluster (see 'dbs3 bench-serve -h')\n")
		fmt.Fprintf(out, "  dbs3 dump [flags]             write a demo relation as typed CSV (see 'dbs3 dump -h')\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *query == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *batchGrain < 0 {
		fatal(fmt.Errorf("-batchgrain %d is negative (0 = engine default, 1 = per-tuple pushes)", *batchGrain))
	}
	if *mem < 0 {
		fatal(fmt.Errorf("-mem %d is negative (0 = unlimited)", *mem))
	}

	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", *wisc, *degree, "unique2", 42); err != nil {
		fatal(err)
	}
	if err := db.CreateJoinPair("", *aCard, *bCard, *degree, *skew); err != nil {
		fatal(err)
	}

	opt := &dbs3.Options{Threads: *threads, Strategy: *strategy, JoinAlgo: *joinAlgo, Priority: *priority, Materialize: *materialize, BatchGrain: *batchGrain}
	if *concurrency <= 1 {
		// Single-statement mode: -mem bounds this query directly. Batch mode
		// instead hands it to the manager as the machine-wide budget, and
		// admission grants each query its share.
		opt.MemoryBudget = *mem
	}
	if *explain {
		if *concurrency > 1 {
			fatal(fmt.Errorf("-explain and -concurrency are mutually exclusive"))
		}
		dot, err := db.Explain(*query, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(dot)
		return
	}
	if *concurrency > 1 {
		runBatch(db, *query, opt, *concurrency, *repeat, *budget, *mem)
		return
	}

	runStreaming(db, *query, opt, *limit)
}

// runStreaming executes one statement through the cursor API: rows print as
// the engine produces them, the tail beyond -limit is only counted, and the
// per-operator footer prints once the stream is drained.
func runStreaming(db *dbs3.Database, query string, opt *dbs3.Options, limit int) {
	stmt, err := db.Prepare(query, opt)
	if err != nil {
		fatal(err)
	}
	rows, err := stmt.Query()
	if err != nil {
		fatal(err)
	}
	defer rows.Close()

	cols := rows.Columns()
	fmt.Println(strings.Join(cols, " | "))
	printed, total := 0, 0
	for rows.Next() {
		total++
		if printed >= limit {
			continue
		}
		var vals []string
		row := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range row {
			ptrs[i] = &row[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			fatal(err)
		}
		for _, v := range row {
			vals = append(vals, fmt.Sprint(v))
		}
		fmt.Println(strings.Join(vals, " | "))
		printed++
	}
	if err := rows.Err(); err != nil {
		fatal(err)
	}
	if total > printed {
		fmt.Printf("... (%d rows not shown)\n", total-printed)
	}
	fmt.Print(dbs3.FormatStats(total, rows.Threads(), rows.ChainThreads(), rows.Operators()))
}

// runBatch is the concurrent driver: workers prepare the ';'-separated
// statements once and fire them round-robin through a QueryManager. The
// summary shows the feedback loop at work — mean threads per query shrink as
// concurrency saturates the budget, total allocation never exceeds it — and
// the plan cache amortizing compilation across repeats.
func runBatch(db *dbs3.Database, query string, opt *dbs3.Options, workers, repeat, budget int, mem int64) {
	var raw []string
	for _, s := range strings.Split(query, ";") {
		if s = strings.TrimSpace(s); s != "" {
			raw = append(raw, s)
		}
	}
	if len(raw) == 0 {
		fatal(fmt.Errorf("no statements in -q"))
	}
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: budget, MemoryBudget: mem})

	stmts := make([]*dbs3.Stmt, len(raw))
	for i, s := range raw {
		var err error
		if stmts[i], err = db.Prepare(s, opt); err != nil {
			fatal(err)
		}
	}

	var queries, rowsOut, threadSum, failures atomic.Int64
	var utilSum atomic.Int64 // utilization * 1e6, summed
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < repeat*len(stmts); i++ {
				stmt := stmts[(w+i)%len(stmts)]
				rows, err := stmt.Query()
				if err != nil {
					fmt.Fprintf(os.Stderr, "dbs3: worker %d: %v\n", w, err)
					failures.Add(1)
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					fmt.Fprintf(os.Stderr, "dbs3: worker %d: %v\n", w, err)
					failures.Add(1)
					return
				}
				queries.Add(1)
				rowsOut.Add(int64(n))
				threadSum.Add(int64(rows.Threads()))
				utilSum.Add(int64(rows.Utilization() * 1e6))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := m.Stats()
	fmt.Printf("batch: %d workers x %d executions over %d statement(s), budget %d threads, %s priority\n",
		workers, repeat*len(stmts), len(stmts), budget, opt.Priority)
	fmt.Printf("  queries:        %d (%.1f queries/s)\n", queries.Load(), float64(queries.Load())/elapsed.Seconds())
	fmt.Printf("  elapsed:        %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  rows returned:  %d\n", rowsOut.Load())
	if queries.Load() > 0 {
		fmt.Printf("  mean threads:   %.2f per query (effective utilization %.2f mean, EWMA %.2f)\n",
			float64(threadSum.Load())/float64(queries.Load()), float64(utilSum.Load())/1e6/float64(queries.Load()), st.SmoothedUtilization)
	}
	fmt.Printf("  manager:        admitted %d, completed %d, failed %d, cancelled %d, rejected %d, peak threads %d/%d\n",
		st.Admitted, st.Completed, st.Failed, st.Cancelled, st.Rejected, st.PeakThreads, budget)
	if st.Readmissions > 0 {
		fmt.Printf("  readmissions:   %d at chain boundaries (%d threads returned early, %d grown mid-flight)\n",
			st.Readmissions, st.ThreadsReturnedEarly, st.ThreadsGrownMidFlight)
	}
	if st.MemBudget > 0 {
		fmt.Printf("  memory:         budget %d bytes, peak reserved %d, spilled %d bytes over %d pass(es)\n",
			st.MemBudget, st.PeakMem, st.SpilledBytes, st.SpillPasses)
	}
	fmt.Printf("  plan cache:     %d hits, %d misses\n", st.PlanCacheHits, st.PlanCacheMisses)
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbs3:", err)
	os.Exit(1)
}
