// Command dbs3 runs ESQL queries against a generated demo database on the
// adaptive parallel execution engine, printing results and per-operator
// scheduling statistics.
//
// The demo database holds:
//
//	wisc        Wisconsin benchmark relation (-wisc tuples, -degree fragments)
//	A, B, Br    the paper's join pair (-acard/-bcard tuples, Zipf -skew);
//	            A and B are co-partitioned on k, Br is placed on id
//
// Usage:
//
//	dbs3 -q "SELECT * FROM A JOIN B ON A.k = B.k" -threads 8 -strategy lpt
//	dbs3 -q "SELECT ten, COUNT(*) FROM wisc GROUP BY ten"
//	dbs3 -q "SELECT * FROM A JOIN Br ON A.k = Br.k" -explain
package main

import (
	"flag"
	"fmt"
	"os"

	"dbs3"
)

func main() {
	var (
		query    = flag.String("q", "", "ESQL query to execute")
		threads  = flag.Int("threads", 0, "degree of parallelism (0 = scheduler decides)")
		strategy = flag.String("strategy", "auto", "consumption strategy: auto, random, lpt")
		joinAlgo = flag.String("join", "hash", "join algorithm: hash, nested-loop, temp-index")
		explain  = flag.Bool("explain", false, "print the parallel plan (DOT) instead of executing")
		limit    = flag.Int("limit", 20, "maximum rows to print")
		wisc     = flag.Int("wisc", 10_000, "wisconsin relation cardinality")
		aCard    = flag.Int("acard", 10_000, "join relation A cardinality")
		bCard    = flag.Int("bcard", 1_000, "join relation B cardinality")
		degree   = flag.Int("degree", 20, "degree of partitioning")
		skew     = flag.Float64("skew", 0, "Zipf skew of A's fragment sizes (0..1)")
	)
	flag.Parse()
	if *query == "" {
		flag.Usage()
		os.Exit(2)
	}

	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", *wisc, *degree, "unique2", 42); err != nil {
		fatal(err)
	}
	if err := db.CreateJoinPair("", *aCard, *bCard, *degree, *skew); err != nil {
		fatal(err)
	}

	opt := &dbs3.Options{Threads: *threads, Strategy: *strategy, JoinAlgo: *joinAlgo}
	if *explain {
		dot, err := db.Explain(*query, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(dot)
		return
	}

	rows, err := db.Query(*query, opt)
	if err != nil {
		fatal(err)
	}
	if len(rows.Data) > *limit {
		trimmed := *rows
		trimmed.Data = rows.Data[:*limit]
		fmt.Print(trimmed.String())
		fmt.Printf("... (%d rows not shown)\n", len(rows.Data)-*limit)
		return
	}
	fmt.Print(rows.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbs3:", err)
	os.Exit(1)
}
