package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dbs3"
	"dbs3/internal/server"
)

// serveMain is the `dbs3 serve` subcommand: the network front end over the
// concurrent runtime. It populates a database (the generated demo relations
// and/or CSV files), installs a QueryManager sized by -budget/-queue, and
// serves the JSON wire protocol until SIGINT/SIGTERM.
func serveMain(args []string) {
	fs := flag.NewFlagSet("dbs3 serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		budget   = fs.Int("budget", 0, "manager thread budget shared by all clients (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 0, "admission queue depth; beyond it queries are shed with 503 (0 = 4x budget)")
		mem      = fs.Int64("mem", 0, "manager working-memory budget in bytes, reserved per query at admission; blocking operators spill to disk beyond their grant (0 = memory admission off)")
		priority = fs.String("priority", "interactive", "default admission class for requests that set none: interactive, batch")
		stmtTTL  = fs.Duration("stmt-ttl", 0, "idle lifetime of server-side prepared statements (0 = 15m, negative = never expire)")
		token    = fs.String("token", "", "bearer token required on every request (empty = no auth)")
		shards   = fs.Int("shards", 1, "cluster width: restrict relations to this node's hash shard (1 = whole relations)")
		shard    = fs.Int("shard", 0, "this node's shard index in [0,-shards) (with -shards > 1)")
		demo     = fs.Bool("demo", true, "generate the demo relations (wisc, A, B, Br)")
		wisc     = fs.Int("wisc", 10_000, "wisconsin relation cardinality (with -demo)")
		aCard    = fs.Int("acard", 10_000, "join relation A cardinality (with -demo)")
		bCard    = fs.Int("bcard", 1_000, "join relation B cardinality (with -demo)")
		degree   = fs.Int("degree", 20, "degree of partitioning (demo and CSV relations)")
		skew     = fs.Float64("skew", 0, "Zipf skew of A's fragment sizes (with -demo)")
		csvKey   = fs.String("csvkey", "", "partitioning key column for -csv relations")
		csvFiles []string
	)
	fs.Func("csv", "load a CSV `file` as a relation named after it (repeatable; needs -csvkey)", func(v string) error {
		csvFiles = append(csvFiles, v)
		return nil
	})
	fs.Parse(args)

	db := dbs3.New()
	if *demo {
		if err := db.CreateWisconsin("wisc", *wisc, *degree, "unique2", 42); err != nil {
			fatal(err)
		}
		if err := db.CreateJoinPair("", *aCard, *bCard, *degree, *skew); err != nil {
			fatal(err)
		}
	}
	for _, path := range csvFiles {
		if *csvKey == "" {
			fatal(fmt.Errorf("-csv needs -csvkey"))
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = db.LoadCSV(name, f, *csvKey, *degree)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", path, err))
		}
	}
	if len(db.Relations()) == 0 {
		fatal(fmt.Errorf("nothing to serve: -demo=false and no -csv relations"))
	}

	// Cluster membership: keep only this node's hash shard of every
	// relation. Demo relations distribute on their join/filter keys (wisc on
	// unique2; A, B, Br on k, the join attribute, so joins stay node-local);
	// CSV relations distribute on their partitioning key.
	if *shards > 1 {
		dist := map[string]string{"wisc": "unique2", "A": "k", "B": "k", "Br": "k"}
		for _, rel := range db.Relations() {
			col, ok := dist[rel]
			if !ok {
				col = *csvKey
			}
			if err := db.ShardRelation(rel, col, *shard, *shards); err != nil {
				fatal(fmt.Errorf("sharding %s: %w", rel, err))
			}
		}
	} else if *shard != 0 {
		fatal(fmt.Errorf("-shard %d without -shards", *shard))
	}

	m := db.Manager(dbs3.ManagerConfig{Budget: *budget, MaxQueued: *queue, MemoryBudget: *mem})
	handler := server.New(db, m, server.Config{
		DefaultOptions: dbs3.Options{Priority: *priority},
		StmtTTL:        *stmtTTL,
		AuthToken:      *token,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	shardNote := ""
	if *shards > 1 {
		shardNote = fmt.Sprintf(", shard %d/%d", *shard, *shards)
	}
	fmt.Printf("dbs3: serving %s on http://%s (budget %d threads%s)\n",
		strings.Join(db.Relations(), ", "), ln.Addr(), m.Budget(), shardNote)

	httpSrv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: in-flight streams get a grace period; their request
	// contexts cancel on shutdown timeout, which aborts the queries and
	// returns their threads.
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		httpSrv.Close()
	}
	st := m.Stats()
	fmt.Printf("dbs3: served %d queries (%d completed, %d cancelled, %d failed, %d shed), peak threads %d/%d\n",
		st.Admitted, st.Completed, st.Cancelled, st.Failed, st.Rejected, st.PeakThreads, m.Budget())
}

// dumpMain is the `dbs3 dump` subcommand: it generates the demo database
// and writes one relation as typed CSV — the shape `dbs3 serve -csv` loads
// back, and what the CI smoke script feeds the server.
func dumpMain(args []string) {
	fs := flag.NewFlagSet("dbs3 dump", flag.ExitOnError)
	var (
		rel    = fs.String("rel", "wisc", "relation to dump")
		out    = fs.String("o", "", "output file (default stdout)")
		wisc   = fs.Int("wisc", 10_000, "wisconsin relation cardinality")
		aCard  = fs.Int("acard", 10_000, "join relation A cardinality")
		bCard  = fs.Int("bcard", 1_000, "join relation B cardinality")
		degree = fs.Int("degree", 20, "degree of partitioning")
		skew   = fs.Float64("skew", 0, "Zipf skew of A's fragment sizes")
	)
	fs.Parse(args)

	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", *wisc, *degree, "unique2", 42); err != nil {
		fatal(err)
	}
	if err := db.CreateJoinPair("", *aCard, *bCard, *degree, *skew); err != nil {
		fatal(err)
	}
	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			fatal(err)
		}
		w = f
	}
	if err := db.DumpCSV(*rel, w); err != nil {
		fatal(err)
	}
	// A close error is a truncated dump (e.g. ENOSPC at writeback) — it
	// must fail loudly, not feed a partial CSV to `serve -csv`.
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}
