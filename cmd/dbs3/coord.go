package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dbs3/internal/cluster"
)

// coordMain is the `dbs3 coord` subcommand: the scatter-gather query
// coordinator over a set of serve nodes. It speaks the same wire protocol
// as a single node, so any client points at it unchanged; queries compile
// once, fan out to every node, and the partial streams merge locally
// (union for selections/joins, group-wise merge aggregation for GROUP BY).
func coordMain(args []string) {
	fs := flag.NewFlagSet("dbs3 coord", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8090", "listen address")
		nodes   = fs.String("nodes", "", "comma-separated worker base URLs, one entry per shard; \"|\" joins a shard's replicas (e.g. http://h1:8080,http://h2a:8080|http://h2b:8080)")
		token   = fs.String("token", "", "bearer token: presented to workers and required of clients (empty = no auth)")
		wire    = fs.String("wire", "columnar", "worker-link result encoding: columnar, ndjson")
		poll    = fs.Duration("poll", 2*time.Second, "health/utilization poll interval (negative = off)")
		timeout = fs.Duration("timeout", 10*time.Second, "per-worker-request header timeout")
		retries = fs.Int("retries", 3, "connect retries per worker request (negative = off)")

		retryWhole   = fs.Bool("retry-whole-query", false, "restart a query once when a replica dies after rows merged (only if nothing was delivered yet)")
		brkThreshold = fs.Int("breaker-threshold", 3, "consecutive probe/query failures that open a replica's circuit breaker")
		brkCooloff   = fs.Duration("breaker-cooloff", 5*time.Second, "how long an open breaker withholds traffic before half-opening")
	)
	fs.Parse(args)

	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	if len(nodeList) == 0 {
		fatal(fmt.Errorf("coord needs -nodes"))
	}

	// The signal context is the coordinator's lifecycle: SIGINT/SIGTERM
	// stops the background poller (cancelling in-flight /stats requests)
	// along with the HTTP front end.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	coord, err := cluster.New(ctx, cluster.Config{
		Nodes:            nodeList,
		Token:            *token,
		Wire:             *wire,
		Timeout:          *timeout,
		Retries:          *retries,
		PollInterval:     *poll,
		RetryWholeQuery:  *retryWhole,
		BreakerThreshold: *brkThreshold,
		BreakerCooloff:   *brkCooloff,
	})
	if err != nil {
		fatal(err)
	}
	defer coord.Close()

	// Surface dead replicas at startup rather than on the first query; the
	// cluster still starts (nodes may join late), the operator just knows
	// which shard is running without redundancy.
	probeCtx, probeCancel := context.WithTimeout(ctx, *timeout)
	if report, err := coord.Health(probeCtx); err != nil {
		for _, nh := range report {
			if !nh.Healthy {
				fmt.Fprintf(os.Stderr, "dbs3: warning: shard %d replica %s down (breaker %s): %s\n",
					nh.Shard, nh.Node, nh.Breaker, nh.Error)
			}
		}
	}
	probeCancel()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dbs3: coordinating %d nodes on http://%s (%s)\n",
		len(nodeList), ln.Addr(), strings.Join(nodeList, ", "))

	httpSrv := &http.Server{Handler: coord.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		httpSrv.Close()
	}
	st := coord.Stats()
	fmt.Printf("dbs3: coordinated %d queries (%d failed, %d failovers, %d whole-query retries, %d statement re-prepares), %d/%d replicas healthy at exit\n",
		st.Queries, st.Failures, st.Failovers, st.WholeQueryRetries, st.Repreparations, st.Healthy, len(st.Nodes))
}
