module dbs3

go 1.24
