package dbs3

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func facadeDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	if err := db.CreateWisconsin("wisc", 2000, 8, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateJoinPair("", 1000, 100, 10, 0.5); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFacadeCatalog(t *testing.T) {
	db := facadeDB(t)
	names := db.Relations()
	if len(names) != 4 {
		t.Fatalf("relations = %v", names)
	}
	card, err := db.Cardinality("wisc")
	if err != nil || card != 2000 {
		t.Errorf("Cardinality = %d, %v", card, err)
	}
	deg, err := db.Degree("A")
	if err != nil || deg != 10 {
		t.Errorf("Degree = %d, %v", deg, err)
	}
	sizes, err := db.FragmentSizes("A")
	if err != nil || len(sizes) != 10 {
		t.Errorf("FragmentSizes = %v, %v", sizes, err)
	}
	if sizes[0] <= sizes[9] {
		t.Error("Zipf 0.5 fragment sizes should be skewed")
	}
	if _, err := db.Cardinality("nope"); err == nil {
		t.Error("missing relation accepted")
	}
	if _, err := db.Degree("nope"); err == nil {
		t.Error("missing relation accepted")
	}
	if _, err := db.FragmentSizes("nope"); err == nil {
		t.Error("missing relation accepted")
	}
}

func TestFacadeDuplicateNames(t *testing.T) {
	db := facadeDB(t)
	if err := db.CreateWisconsin("wisc", 10, 2, "unique2", 1); err == nil {
		t.Error("duplicate relation accepted")
	}
	if err := db.CreateJoinPair("", 100, 20, 4, 0); err == nil {
		t.Error("duplicate join pair accepted")
	}
}

func TestFacadeCreateErrors(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("w", 100, 4, "nope", 1); err == nil {
		t.Error("bad partitioning key accepted")
	}
	if err := db.CreateJoinPair("x", 100, 15, 10, 0); err == nil {
		t.Error("BCard not multiple of degree accepted")
	}
}

func TestFacadeSelection(t *testing.T) {
	db := facadeDB(t)
	rows, err := db.QueryAll("SELECT unique2 FROM wisc WHERE unique1 < 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 100 {
		t.Errorf("rows = %d, want 100", len(rows.Data))
	}
	if len(rows.Columns) != 1 || rows.Columns[0] != "unique2" {
		t.Errorf("columns = %v", rows.Columns)
	}
	if _, ok := rows.Data[0][0].(int64); !ok {
		t.Errorf("value type %T, want int64", rows.Data[0][0])
	}
	if rows.Threads < 1 {
		t.Error("no threads reported")
	}
	if len(rows.Operators) == 0 {
		t.Error("no operator stats")
	}
}

func TestFacadeJoin(t *testing.T) {
	db := facadeDB(t)
	for _, opt := range []*Options{
		nil,
		{Threads: 4, Strategy: "random"},
		{Threads: 8, Strategy: "lpt", JoinAlgo: "nested-loop"},
		{JoinAlgo: "temp-index"},
	} {
		rows, err := db.QueryAll("SELECT * FROM A JOIN B ON A.k = B.k", opt)
		if err != nil {
			t.Fatalf("opt=%+v: %v", opt, err)
		}
		if len(rows.Data) != 1000 {
			t.Errorf("opt=%+v: %d rows, want 1000", opt, len(rows.Data))
		}
	}
}

func TestFacadeRepartitionedJoin(t *testing.T) {
	db := facadeDB(t)
	rows, err := db.QueryAll("SELECT A.id FROM A JOIN Br ON A.k = Br.k WHERE Br.id < 50", &Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) == 0 || len(rows.Data) >= 1000 {
		t.Errorf("rows = %d", len(rows.Data))
	}
	// The plan must include a transmit operator.
	found := false
	for _, op := range rows.Operators {
		if op.Name == "transmit" {
			found = true
		}
	}
	if !found {
		t.Errorf("operators = %+v; expected a transmit", rows.Operators)
	}
}

func TestFacadeGroupBy(t *testing.T) {
	db := facadeDB(t)
	rows, err := db.QueryAll("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 10 {
		t.Fatalf("groups = %d, want 10", len(rows.Data))
	}
	var total int64
	for _, row := range rows.Data {
		total += row[1].(int64)
	}
	if total != 2000 {
		t.Errorf("counts sum to %d", total)
	}
}

func TestFacadeStrings(t *testing.T) {
	db := facadeDB(t)
	rows, err := db.QueryAll("SELECT string4 FROM wisc WHERE string4 = 'AAAAxxxx'", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 500 {
		t.Errorf("rows = %d, want 500 (every 4th)", len(rows.Data))
	}
	if s, ok := rows.Data[0][0].(string); !ok || s != "AAAAxxxx" {
		t.Errorf("value = %v", rows.Data[0][0])
	}
}

func TestFacadeOptionValidation(t *testing.T) {
	db := facadeDB(t)
	if _, err := db.QueryAll("SELECT * FROM A", &Options{Strategy: "bogus"}); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := db.QueryAll("SELECT * FROM A", &Options{JoinAlgo: "bogus"}); err == nil {
		t.Error("bad join algorithm accepted")
	}
	if _, err := db.QueryAll("SELEKT", nil); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestFacadeExplain(t *testing.T) {
	db := facadeDB(t)
	dot, err := db.Explain("SELECT * FROM A JOIN Br ON A.k = Br.k", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "transmit", "join", "hash(k)"} {
		if !strings.Contains(dot, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
	if _, err := db.Explain("SELEKT", nil); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := db.Explain("SELECT * FROM A", &Options{JoinAlgo: "bogus"}); err == nil {
		t.Error("bad join algorithm accepted")
	}
}

// LPT vs Random equivalence of results on a skewed join — the strategies
// change scheduling, never answers.
func TestFacadeStrategiesAgree(t *testing.T) {
	db := New()
	if err := db.CreateJoinPair("s", 2000, 200, 20, 1); err != nil {
		t.Fatal(err)
	}
	random, err := db.QueryAll("SELECT sA.id FROM sA JOIN sB ON sA.k = sB.k", &Options{Threads: 6, Strategy: "random"})
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := db.QueryAll("SELECT sA.id FROM sA JOIN sB ON sA.k = sB.k", &Options{Threads: 6, Strategy: "lpt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(random.Data) != len(lpt.Data) || len(random.Data) != 2000 {
		t.Errorf("row counts differ: %d vs %d", len(random.Data), len(lpt.Data))
	}
	seen := make(map[int64]bool)
	for _, row := range random.Data {
		seen[row[0].(int64)] = true
	}
	for _, row := range lpt.Data {
		if !seen[row[0].(int64)] {
			t.Fatal("LPT produced a row Random did not")
		}
	}
}

func TestFacadeGrainOption(t *testing.T) {
	db := facadeDB(t)
	whole, err := db.QueryAll("SELECT * FROM A JOIN B ON A.k = B.k", &Options{Threads: 4, JoinAlgo: "nested-loop"})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := db.QueryAll("SELECT * FROM A JOIN B ON A.k = B.k", &Options{Threads: 4, JoinAlgo: "nested-loop", Grain: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(whole.Data) != len(fine.Data) {
		t.Fatalf("grain changed the result: %d vs %d rows", len(whole.Data), len(fine.Data))
	}
	acts := func(r *Result) int64 {
		for _, op := range r.Operators {
			if op.Name == "join" {
				return op.Activations
			}
		}
		return 0
	}
	if acts(fine) <= acts(whole) {
		t.Errorf("finer grain should multiply activations: %d vs %d", acts(fine), acts(whole))
	}
}

func TestFacadeBatchGrainOption(t *testing.T) {
	db := facadeDB(t)
	sortRows := func(r *Result) []string {
		out := make([]string, len(r.Data))
		for i, row := range r.Data {
			out[i] = fmt.Sprint(row...)
		}
		sort.Strings(out)
		return out
	}
	for _, sql := range []string{
		"SELECT * FROM A JOIN Br ON A.k = Br.k", // repartitioned: the pipelined path
		"SELECT k, COUNT(*) FROM A GROUP BY k",
	} {
		perTuple, err := db.QueryAll(sql, &Options{Threads: 4, BatchGrain: 1})
		if err != nil {
			t.Fatal(err)
		}
		batched, err := db.QueryAll(sql, &Options{Threads: 4, BatchGrain: 64})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortRows(batched), sortRows(perTuple)) {
			t.Errorf("%s: batch grain changed the result", sql)
		}
		// The transport batches; activation accounting must not.
		for i, op := range perTuple.Operators {
			if got := batched.Operators[i].Activations; got != op.Activations {
				t.Errorf("%s: %s activations %d batched vs %d per-tuple", sql, op.Name, got, op.Activations)
			}
		}
	}
}

func TestFacadeUtilizationOption(t *testing.T) {
	db := facadeDB(t)
	idle, err := db.QueryAll("SELECT * FROM A JOIN B ON A.k = B.k", &Options{JoinAlgo: "nested-loop"})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := db.QueryAll("SELECT * FROM A JOIN B ON A.k = B.k", &Options{JoinAlgo: "nested-loop", Utilization: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if busy.Threads > idle.Threads {
		t.Errorf("utilization raised the allocation: %d vs %d", busy.Threads, idle.Threads)
	}
	if len(busy.Data) != len(idle.Data) {
		t.Error("utilization changed the result")
	}
}
