#!/usr/bin/env bash
# Lint gate. The repo's own analyzers (cmd/dbs3lint) are the hard part of
# the gate: they build from the module with no external dependencies, so
# they always run and always fail the job on a finding.
#
# staticcheck and govulncheck are third-party; we cannot vendor them (the
# module has no external dependencies by design), so they are pinned here
# by version and fetched with `go run pkg@version`. When the proxy is
# unreachable (offline/dev containers) they are skipped with a notice —
# CI runners have network, so the skip path never weakens the hosted gate.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

echo "== dbs3lint (repo analyzers: lockio, ctxflow, cancelclass, atomicfield)"
go run ./cmd/dbs3lint ./...

run_pinned() {
    local name=$1 pkg=$2
    shift 2
    echo "== $name"
    if out=$(go run "$pkg" "$@" 2>&1); then
        [ -n "$out" ] && printf '%s\n' "$out"
    else
        status=$?
        if printf '%s' "$out" | grep -qiE 'dial tcp|no such host|proxyconnect|connection refused|timeout|TLS handshake|i/o timeout'; then
            echo "-- $name skipped: module proxy unreachable (offline)"
            return 0
        fi
        printf '%s\n' "$out"
        return "$status"
    fi
}

run_pinned staticcheck "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" ./...
run_pinned govulncheck "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}" ./...

echo "lint: ok"
