#!/usr/bin/env bash
# Cluster load benchmark: boot an in-process 3-node sharded cluster plus
# coordinator and drive it with an open-loop Zipf-skewed arrival stream
# (hundreds of concurrent client statements through the coordinator's HTTP
# front end). Writes latency percentiles, throughput and cluster counters
# to BENCH_serve.json. Override the shape via env: NODES, RATE, DURATION,
# INFLIGHT, OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_serve.json}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/dbs3" ./cmd/dbs3
"$workdir/dbs3" bench-serve \
  -nodes "${NODES:-3}" \
  -rate "${RATE:-150}" \
  -duration "${DURATION:-10s}" \
  -inflight "${INFLIGHT:-512}" \
  -o "$OUT"
echo "bench-serve report written to $OUT"
