#!/usr/bin/env bash
# bench_spill.sh — run the larger-than-memory join benchmarks and emit
# BENCH_spill.json (archived by CI next to the other BENCH_* artifacts).
#
# Two variants of the same build-heavy hash join (package dbs3):
#   - BenchmarkSpillJoinInMemory: no memory budget, the build side lives
#     in RAM — the reference throughput.
#   - BenchmarkSpillJoinBudgeted: a 64 KiB working-memory grant, ~150x
#     smaller than the build side, forcing Grace partitioning through
#     internal/storage — the degraded-but-correct disk path. The
#     benchmark itself fails if the run produces a wrong join result or
#     does not spill, so the artifact numbers always describe a
#     verified execution.
#
# The script FAILS (CI gate) when:
#   - either benchmark is missing from the output,
#   - the budgeted run reports zero spilled bytes (the spill path was
#     not exercised), or
#   - the in-memory run reports nonzero spilled bytes (an unbudgeted
#     query touched the spill machinery).
#
# The in-memory/budgeted throughput ratio is reported, not gated: it
# measures disk against RAM, which varies too much across CI hosts to
# hold a floor.
#
# Usage: ./scripts/bench_spill.sh [benchtime] [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
OUT="${2:-BENCH_spill.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'SpillJoin' \
  -benchmem -benchtime "$BENCHTIME" -count 1 . | tee "$RAW"

awk '
  function metric(bench, name) { return m[bench "\x1f" name] }
  /^Benchmark/ {
    bench = $1
    sub(/-[0-9]+$/, "", bench)
    if (n++) body = body ","
    body = body sprintf("\n    {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", bench, $2)
    first = 1
    for (i = 3; i < NF; i += 2) {
      if (!first) body = body ","
      first = 0
      body = body sprintf("\"%s\":%s", $(i+1), $i)
      m[bench "\x1f" $(i+1)] = $i
    }
    body = body "}}"
  }
  END {
    print "{"
    printf "  \"benchmarks\": [%s\n  ],\n", body
    mem = metric("BenchmarkSpillJoinInMemory", "ns/op")
    bud = metric("BenchmarkSpillJoinBudgeted", "ns/op")
    sb  = metric("BenchmarkSpillJoinBudgeted", "spilledB/op")
    sp  = metric("BenchmarkSpillJoinBudgeted", "spillpasses/op")
    s0  = metric("BenchmarkSpillJoinInMemory", "spilledB/op")
    printf "  \"summary\": {\n"
    printf "    \"in_memory_ns_per_op\": %.0f,\n", mem
    printf "    \"budgeted_ns_per_op\": %.0f,\n", bud
    printf "    \"spill_slowdown\": %.3f,\n", bud / mem
    printf "    \"spilled_bytes_per_op\": %.0f,\n", sb
    printf "    \"spill_passes_per_op\": %.0f\n", sp
    printf "  },\n"
    cmd = "date -u +%Y-%m-%dT%H:%M:%SZ"; cmd | getline ts; close(cmd)
    printf "  \"generated\": \"%s\",\n", ts
    printf "  \"benchtime\": \"%s\"\n", bt
    print "}"
    status = 0
    if (mem == "" || bud == "") {
      print "bench_spill: missing benchmark results" > "/dev/stderr"
      status = 1
    }
    if (sb == "" || sb + 0 <= 0) {
      print "bench_spill: budgeted run spilled nothing — spill path not exercised" > "/dev/stderr"
      status = 1
    }
    if (s0 != "" && s0 + 0 != 0) {
      printf "bench_spill: in-memory run spilled %s bytes — unbudgeted query hit the spill path\n", s0 > "/dev/stderr"
      status = 1
    }
    exit status
  }
' bt="$BENCHTIME" "$RAW" > "$OUT"

grep -q '"name":"Benchmark' "$OUT" || { echo "bench_spill: no benchmark results captured" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json; d = json.load(open('$OUT')); assert d['benchmarks'] and d['summary']['spilled_bytes_per_op'] > 0"
fi
echo "wrote $OUT"
