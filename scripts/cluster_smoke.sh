#!/usr/bin/env bash
# Smoke test for the scatter-gather tier: build the binary, start three
# sharded worker nodes plus a coordinator (all behind bearer-token auth),
# and drive a scripted curl session against the coordinator — ad-hoc
# placeholder query, aggregate merge, prepare/exec/exec/close, the 401 path,
# and the cluster stats ledger. Fails on any non-zero exit, a missing stream
# message, or a wrong merged result.
set -euo pipefail
cd "$(dirname "$0")/.."

TOKEN=smoke-secret
AUTH="Authorization: Bearer $TOKEN"
COORD=127.0.0.1:18090
SHARDS=3
WISC=6000
workdir=$(mktemp -d)
pids=()
trap 'for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$workdir"' EXIT

go build -o "$workdir/dbs3" ./cmd/dbs3

# Three workers, each holding one hash shard of the same demo relations.
nodes=""
for i in 0 1 2; do
  addr="127.0.0.1:1808$i"
  "$workdir/dbs3" serve -addr "$addr" -token "$TOKEN" \
    -shards "$SHARDS" -shard "$i" -wisc "$WISC" -acard 2000 -bcard 2000 -degree 8 -budget 4 &
  pids+=($!)
  nodes="$nodes${nodes:+,}http://$addr"
done

for i in 0 1 2; do
  for _ in $(seq 1 50); do
    curl -fsS -H "$AUTH" "http://127.0.0.1:1808$i/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS -H "$AUTH" "http://127.0.0.1:1808$i/healthz" >/dev/null
done

# A worker rejects tokenless requests before anything else runs.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:18080/healthz")
[ "$code" = "401" ] || { echo "worker served a tokenless request ($code)"; exit 1; }

"$workdir/dbs3" coord -addr "$COORD" -nodes "$nodes" -token "$TOKEN" &
pids+=($!)
for _ in $(seq 1 50); do
  curl -fsS -H "$AUTH" "http://$COORD/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS -H "$AUTH" "http://$COORD/healthz" >/dev/null

# The coordinator enforces the same token on its own front end.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$COORD/healthz")
[ "$code" = "401" ] || { echo "coordinator served a tokenless request ($code)"; exit 1; }

# Ad-hoc placeholder query: the union of the three shards must return
# exactly the 25 selected tuples, streamed with header and footer.
out=$(curl -fsS -H "$AUTH" -X POST "http://$COORD/query" \
  -d '{"sql":"SELECT unique2 FROM wisc WHERE unique1 < ?","args":[25]}')
echo "$out" | grep -q '"header"' || { echo "missing header: $out"; exit 1; }
echo "$out" | grep -q '"rows"' || { echo "missing rows: $out"; exit 1; }
echo "$out" | grep -q '"rowCount":25,' || { echo "bad scatter union footer: $out"; exit 1; }

# Grouped aggregate: COUNT partials from three shards merge to the global
# counts — ten groups, and the sum of the per-group counts is the full
# relation.
agg=$(curl -fsS -H "$AUTH" -X POST "http://$COORD/query" \
  -d '{"sql":"SELECT ten, COUNT(*) FROM wisc GROUP BY ten"}')
echo "$agg" | grep -q '"rowCount":10,' || { echo "bad merged aggregate: $agg"; exit 1; }
total=$(echo "$agg" | sed -n 's/.*"rows":\[\(.*\)\].*/\1/p' \
  | tr '[]' '\n' | awk -F, 'NF==2 {s+=$2} END {print s}')
[ "$total" = "$WISC" ] || { echo "merged COUNTs sum to $total, want $WISC"; exit 1; }

# Compile once at the coordinator, execute twice with different bindings.
stmt=$(curl -fsS -H "$AUTH" -X POST "http://$COORD/prepare" \
  -d '{"sql":"SELECT two, COUNT(*) FROM wisc WHERE unique1 < ? GROUP BY two"}')
id=$(echo "$stmt" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "prepare returned no id: $stmt"; exit 1; }
curl -fsS -H "$AUTH" -X POST "http://$COORD/stmt/$id/exec" -d '{"args":[100]}' \
  | grep -q '"done"' || { echo "exec 1 did not complete"; exit 1; }
curl -fsS -H "$AUTH" -X POST "http://$COORD/stmt/$id/exec" -d '{"args":[3000]}' \
  | grep -q '"rowCount":2,' || { echo "exec 2 bad merged result"; exit 1; }
curl -fsS -H "$AUTH" -X DELETE "http://$COORD/stmt/$id" -o /dev/null

# Cluster ledger: every node healthy, queries counted, none failed.
cstats=$(curl -fsS -H "$AUTH" "http://$COORD/stats")
for want in '"healthy":3' '"failures":0' '"statements":0'; do
  echo "$cstats" | grep -q "$want" || { echo "cluster stats missing $want: $cstats"; exit 1; }
done

# Worker ledgers balance too: subqueries completed, no threads stuck.
for i in 0 1 2; do
  wstats=$(curl -fsS -H "$AUTH" "http://127.0.0.1:1808$i/stats")
  for want in '"failed":0' '"activeThreads":0' '"rejected":0'; do
    echo "$wstats" | grep -q "$want" || { echo "worker $i stats missing $want: $wstats"; exit 1; }
  done
done

# --- Replica failover: a 2-shard x 2-replica cluster keeps answering while
# one replica is killed mid-run. The kill must show up as transparent
# failovers and an opened breaker on /stats, never as a client-visible
# failure. Polling is off so the breaker opens purely from query traffic.
COORD2=127.0.0.1:18091
WISC2=3000
rnodes=""
rpids=()
for i in 0 1; do
  pair=""
  for r in 0 1; do
    addr="127.0.0.1:1808$((4 + 2*i + r))"
    "$workdir/dbs3" serve -addr "$addr" -token "$TOKEN" \
      -shards 2 -shard "$i" -wisc "$WISC2" -acard 1000 -bcard 1000 -degree 8 -budget 4 &
    pids+=($!)
    rpids+=($!)
    pair="$pair${pair:+|}http://$addr"
  done
  rnodes="$rnodes${rnodes:+,}$pair"
done
for p in 4 5 6 7; do
  for _ in $(seq 1 50); do
    curl -fsS -H "$AUTH" "http://127.0.0.1:1808$p/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS -H "$AUTH" "http://127.0.0.1:1808$p/healthz" >/dev/null
done

"$workdir/dbs3" coord -addr "$COORD2" -nodes "$rnodes" -token "$TOKEN" \
  -poll -1s -retries -1 -retry-whole-query &
pids+=($!)
for _ in $(seq 1 50); do
  curl -fsS -H "$AUTH" "http://$COORD2/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS -H "$AUTH" "http://$COORD2/healthz" >/dev/null

# A healthy replicated run first…
out=$(curl -fsS -H "$AUTH" -X POST "http://$COORD2/query" \
  -d '{"sql":"SELECT unique2 FROM wisc WHERE unique1 < ?","args":[25]}')
echo "$out" | grep -q '"rowCount":25,' || { echo "replicated cluster bad result: $out"; exit 1; }

# …then kill shard 0's second replica and keep querying. Placement rotates
# between equally loaded siblings, so several of these land on the dead
# replica first and must fail over to its surviving sibling transparently.
kill "${rpids[1]}"
wait "${rpids[1]}" 2>/dev/null || true
for _ in $(seq 1 8); do
  out=$(curl -fsS -H "$AUTH" -X POST "http://$COORD2/query" \
    -d '{"sql":"SELECT unique2 FROM wisc WHERE unique1 < ?","args":[25]}')
  echo "$out" | grep -q '"rowCount":25,' || { echo "query failed after replica kill: $out"; exit 1; }
done

# The ledger: transparent failovers happened, the dead replica's breaker
# opened from its consecutive query-path failures, and no client ever saw
# an error.
fstats=$(curl -fsS -H "$AUTH" "http://$COORD2/stats")
echo "$fstats" | grep -q '"failures":0' || { echo "replica kill surfaced failures: $fstats"; exit 1; }
echo "$fstats" | grep -q '"breaker":"open"' || { echo "dead replica breaker never opened: $fstats"; exit 1; }
failovers=$(echo "$fstats" | sed -n 's/.*"failovers":\([0-9]*\).*/\1/p')
[ "${failovers:-0}" -ge 1 ] || { echo "no failovers recorded after replica kill: $fstats"; exit 1; }

echo "cluster smoke OK (incl. replica failover)"
