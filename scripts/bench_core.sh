#!/usr/bin/env bash
# bench_core.sh — run the batch-at-a-time hot-path benchmarks and emit
# BENCH_core.json (archived by CI next to BENCH_adaptive.json).
#
# Three benchmark families feed the artifact:
#   - CoreHotPath* (package dbs3): the whole pipelined-join and aggregate
#     pipelines, vectorized (default grain) vs batch grain 1 with
#     vectorization off — the ns/op comparison of the batched data plane
#     against the per-tuple protocol.
#   - JoinProbe*/AggregateTuple* (internal/operator): the probe/group hot
#     path per tuple, hash-keyed (current) vs the frozen string-key
#     baseline — the allocs/op comparison for the key representation.
#   - ServeWideRow* (internal/server): a 13-integer-column result streamed
#     through the full HTTP stack, NDJSON vs binary columnar — the
#     bytes-per-row comparison for the wire encodings.
#
# The script FAILS (CI gate) when:
#   - allocs/op of BenchmarkCoreHotPathPipelinedJoinBatched regresses above
#     the committed baseline MAX_PIPELINED_JOIN_ALLOCS,
#   - the vectorized pipelined join is not at least MIN_JOIN_SPEEDUP faster
#     than the grain-1 per-tuple protocol (both variants exclude GC from
#     timed sections, so the ratio is stable enough to gate on),
#   - the hash-keyed probe path stops allocating >= 50% less than the
#     string-key baseline (allocs/op are deterministic, unlike ns/op), or
#   - the columnar wire encoding stops being >= MIN_WIRE_BYTES_REDUCTION
#     denser than NDJSON on the wide-row serve benchmark (bytes/row is
#     deterministic for a fixed dataset).
#
# Usage: ./scripts/bench_core.sh [pipeline-benchtime] [micro-benchtime] [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

# Committed baseline: BenchmarkCoreHotPathPipelinedJoinBatched measures
# ~464 allocs/op after the vectorized data plane (run-batched emission,
# flat join index, arena concat); 700 gives headroom for Go-runtime drift
# while still catching any per-tuple allocation creeping back into the
# probe or routing path (each one adds 40k+ allocs to this benchmark).
MAX_PIPELINED_JOIN_ALLOCS=700
# The vectorized OnBatch path must hold at least a 2x speedup over the
# per-tuple grain-1 protocol on the pipelined-join pipeline.
MIN_JOIN_SPEEDUP=2.0
# The columnar encoding must stay at least 3x denser than NDJSON on the
# 13-integer-column wide-row result.
MIN_WIRE_BYTES_REDUCTION=3.0

PIPE_BENCHTIME="${1:-30x}"
MICRO_BENCHTIME="${2:-100000x}"
OUT="${3:-BENCH_core.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'CoreHotPath' \
  -benchmem -benchtime "$PIPE_BENCHTIME" -count 1 . | tee "$RAW"
go test -run '^$' -bench 'JoinProbe|AggregateTuple' \
  -benchmem -benchtime "$MICRO_BENCHTIME" -count 1 ./internal/operator/ | tee -a "$RAW"
go test -run '^$' -bench 'ServeWideRow' \
  -benchmem -benchtime "$PIPE_BENCHTIME" -count 1 ./internal/server/ | tee -a "$RAW"

# Fold benchmark lines into JSON and compute the summary ratios the
# acceptance criteria read: vectorized-vs-grain-1 speedups, the probe-path
# allocs reduction vs the string-key baseline, and the NDJSON-vs-columnar
# bytes-per-row reduction.
awk '
  function metric(bench, name) { return m[bench "\x1f" name] }
  /^Benchmark/ {
    bench = $1
    sub(/-[0-9]+$/, "", bench)  # strip the GOMAXPROCS suffix
    if (n++) body = body ","
    body = body sprintf("\n    {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", bench, $2)
    first = 1
    for (i = 3; i < NF; i += 2) {
      if (!first) body = body ","
      first = 0
      body = body sprintf("\"%s\":%s", $(i+1), $i)
      m[bench "\x1f" $(i+1)] = $i
    }
    body = body "}}"
  }
  END {
    print "{"
    printf "  \"benchmarks\": [%s\n  ],\n", body
    jb = metric("BenchmarkCoreHotPathPipelinedJoinBatched", "ns/op")
    jg = metric("BenchmarkCoreHotPathPipelinedJoinGrain1", "ns/op")
    ab = metric("BenchmarkCoreHotPathAggregateBatched", "ns/op")
    ag = metric("BenchmarkCoreHotPathAggregateGrain1", "ns/op")
    ja = metric("BenchmarkCoreHotPathPipelinedJoinBatched", "allocs/op")
    ph = metric("BenchmarkJoinProbeHashKey", "allocs/op")
    ps = metric("BenchmarkJoinProbeStringKey", "allocs/op")
    gh = metric("BenchmarkAggregateTupleHashKey", "allocs/op")
    gs = metric("BenchmarkAggregateTupleStringKey", "allocs/op")
    wn = metric("BenchmarkServeWideRowNDJSON", "bytes/row")
    wc = metric("BenchmarkServeWideRowColumnar", "bytes/row")
    printf "  \"summary\": {\n"
    printf "    \"pipelined_join_speedup\": %.3f,\n", jg / jb
    printf "    \"pipelined_join_batched_allocs_per_op\": %d,\n", ja
    printf "    \"aggregate_speedup\": %.3f,\n", ag / ab
    printf "    \"probe_allocs_reduction_pct\": %.1f,\n", (1 - ph / ps) * 100
    printf "    \"aggregate_key_allocs_reduction_pct\": %.1f,\n", (1 - gh / gs) * 100
    printf "    \"wide_row_bytes_per_row_ndjson\": %.1f,\n", wn
    printf "    \"wide_row_bytes_per_row_columnar\": %.1f,\n", wc
    printf "    \"wide_row_bytes_reduction\": %.3f\n", wn / wc
    printf "  },\n"
    printf "  \"baseline\": {\"max_pipelined_join_allocs_per_op\": %d, \"min_join_speedup\": %.1f, \"min_wire_bytes_reduction\": %.1f},\n", maxallocs, minspeedup, minwire
    cmd = "date -u +%Y-%m-%dT%H:%M:%SZ"; cmd | getline ts; close(cmd)
    printf "  \"generated\": \"%s\",\n", ts
    printf "  \"benchtime\": {\"pipeline\": \"%s\", \"micro\": \"%s\"}\n", pbt, mbt
    print "}"
    # Gates.
    status = 0
    if (ja == "" || ja + 0 > maxallocs) {
      printf "bench_core: pipelined-join allocs/op %s exceeds committed baseline %d\n", ja, maxallocs > "/dev/stderr"
      status = 1
    }
    if (jb == "" || jg == "" || jg / jb < minspeedup) {
      printf "bench_core: pipelined-join speedup %.3f below the %.1fx floor\n", jg / jb, minspeedup > "/dev/stderr"
      status = 1
    }
    if (ps == "" || ph == "" || (1 - ph / ps) * 100 < 50) {
      printf "bench_core: probe-path allocs reduction %.1f%% below the 50%% floor\n", (1 - ph / ps) * 100 > "/dev/stderr"
      status = 1
    }
    if (wn == "" || wc == "" || wn / wc < minwire) {
      printf "bench_core: wide-row bytes reduction %.3f below the %.1fx floor\n", wn / wc, minwire > "/dev/stderr"
      status = 1
    }
    exit status
  }
' maxallocs="$MAX_PIPELINED_JOIN_ALLOCS" minspeedup="$MIN_JOIN_SPEEDUP" minwire="$MIN_WIRE_BYTES_REDUCTION" pbt="$PIPE_BENCHTIME" mbt="$MICRO_BENCHTIME" "$RAW" > "$OUT"

grep -q '"name":"Benchmark' "$OUT" || { echo "bench_core: no benchmark results captured" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json; d = json.load(open('$OUT')); assert d['benchmarks'] and d['summary']"
fi
echo "wrote $OUT"
