#!/usr/bin/env bash
# bench_core.sh — run the batch-at-a-time hot-path benchmarks and emit
# BENCH_core.json (archived by CI next to BENCH_adaptive.json).
#
# Two benchmark families feed the artifact:
#   - CoreHotPath* (package dbs3): the whole pipelined-join and aggregate
#     pipelines, batched (default grain) vs batch grain 1 — the ns/op
#     comparison of the batched data plane against the per-tuple protocol.
#   - JoinProbe*/AggregateTuple* (internal/operator): the probe/group hot
#     path per tuple, hash-keyed (current) vs the frozen string-key
#     baseline — the allocs/op comparison for the key representation.
#
# The script FAILS (CI gate) when:
#   - allocs/op of BenchmarkCoreHotPathPipelinedJoinBatched regresses above
#     the committed baseline MAX_PIPELINED_JOIN_ALLOCS, or
#   - the hash-keyed probe path stops allocating >= 50% less than the
#     string-key baseline (allocs/op are deterministic, unlike ns/op).
#
# Usage: ./scripts/bench_core.sh [pipeline-benchtime] [micro-benchtime] [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

# Committed baseline: BenchmarkCoreHotPathPipelinedJoinBatched measures
# ~7149 allocs/op; 7900 gives ~10% headroom for Go-runtime drift while
# still catching any per-tuple allocation creeping back into the probe or
# routing path (each one adds 40k+ allocs to this benchmark).
MAX_PIPELINED_JOIN_ALLOCS=7900

PIPE_BENCHTIME="${1:-30x}"
MICRO_BENCHTIME="${2:-100000x}"
OUT="${3:-BENCH_core.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'CoreHotPath' \
  -benchmem -benchtime "$PIPE_BENCHTIME" -count 1 . | tee "$RAW"
go test -run '^$' -bench 'JoinProbe|AggregateTuple' \
  -benchmem -benchtime "$MICRO_BENCHTIME" -count 1 ./internal/operator/ | tee -a "$RAW"

# Fold benchmark lines into JSON and compute the summary ratios the
# acceptance criteria read: batched-vs-grain-1 speedups and the probe-path
# allocs reduction vs the string-key baseline.
awk '
  function metric(bench, name) { return m[bench "\x1f" name] }
  /^Benchmark/ {
    bench = $1
    sub(/-[0-9]+$/, "", bench)  # strip the GOMAXPROCS suffix
    if (n++) body = body ","
    body = body sprintf("\n    {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", bench, $2)
    first = 1
    for (i = 3; i < NF; i += 2) {
      if (!first) body = body ","
      first = 0
      body = body sprintf("\"%s\":%s", $(i+1), $i)
      m[bench "\x1f" $(i+1)] = $i
    }
    body = body "}}"
  }
  END {
    print "{"
    printf "  \"benchmarks\": [%s\n  ],\n", body
    jb = metric("BenchmarkCoreHotPathPipelinedJoinBatched", "ns/op")
    jg = metric("BenchmarkCoreHotPathPipelinedJoinGrain1", "ns/op")
    ab = metric("BenchmarkCoreHotPathAggregateBatched", "ns/op")
    ag = metric("BenchmarkCoreHotPathAggregateGrain1", "ns/op")
    ja = metric("BenchmarkCoreHotPathPipelinedJoinBatched", "allocs/op")
    ph = metric("BenchmarkJoinProbeHashKey", "allocs/op")
    ps = metric("BenchmarkJoinProbeStringKey", "allocs/op")
    gh = metric("BenchmarkAggregateTupleHashKey", "allocs/op")
    gs = metric("BenchmarkAggregateTupleStringKey", "allocs/op")
    printf "  \"summary\": {\n"
    printf "    \"pipelined_join_speedup\": %.3f,\n", jg / jb
    printf "    \"pipelined_join_batched_allocs_per_op\": %d,\n", ja
    printf "    \"aggregate_speedup\": %.3f,\n", ag / ab
    printf "    \"probe_allocs_reduction_pct\": %.1f,\n", (1 - ph / ps) * 100
    printf "    \"aggregate_key_allocs_reduction_pct\": %.1f\n", (1 - gh / gs) * 100
    printf "  },\n"
    printf "  \"baseline\": {\"max_pipelined_join_allocs_per_op\": %d},\n", maxallocs
    cmd = "date -u +%Y-%m-%dT%H:%M:%SZ"; cmd | getline ts; close(cmd)
    printf "  \"generated\": \"%s\",\n", ts
    printf "  \"benchtime\": {\"pipeline\": \"%s\", \"micro\": \"%s\"}\n", pbt, mbt
    print "}"
    # Gates (deterministic metrics only).
    status = 0
    if (ja == "" || ja + 0 > maxallocs) {
      printf "bench_core: pipelined-join allocs/op %s exceeds committed baseline %d\n", ja, maxallocs > "/dev/stderr"
      status = 1
    }
    if (ps == "" || ph == "" || (1 - ph / ps) * 100 < 50) {
      printf "bench_core: probe-path allocs reduction %.1f%% below the 50%% floor\n", (1 - ph / ps) * 100 > "/dev/stderr"
      status = 1
    }
    exit status
  }
' maxallocs="$MAX_PIPELINED_JOIN_ALLOCS" pbt="$PIPE_BENCHTIME" mbt="$MICRO_BENCHTIME" "$RAW" > "$OUT"

grep -q '"name":"Benchmark' "$OUT" || { echo "bench_core: no benchmark results captured" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json; d = json.load(open('$OUT')); assert d['benchmarks'] and d['summary']"
fi
echo "wrote $OUT"
