#!/usr/bin/env bash
# bench_adaptive.sh — run the concurrent-runtime throughput benchmarks
# (managed vs unmanaged, plus the multi-chain adaptive bench) and emit the
# results as BENCH_adaptive.json so CI archives the perf trajectory.
#
# Usage: ./scripts/bench_adaptive.sh [benchtime] [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
OUT="${2:-BENCH_adaptive.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'ManagedThroughput|UnmanagedThroughput|ManagedAdaptiveMultiChain' \
  -benchtime "$BENCHTIME" -count 1 . | tee "$RAW"

# Fold the benchmark lines into JSON:
#   BenchmarkFoo-8  5  123 ns/op  2.0 readmissions/query ...
# -> {"name":"BenchmarkFoo-8","iterations":5,"metrics":{"ns/op":123,...}}
awk '
  BEGIN { print "{"; printf "  \"benchmarks\": [" ; n = 0 }
  /^Benchmark/ {
    if (n++) printf ","
    printf "\n    {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", $1, $2
    first = 1
    for (i = 3; i < NF; i += 2) {
      if (!first) printf ","
      first = 0
      printf "\"%s\":%s", $(i+1), $i
    }
    printf "}}"
  }
  END {
    print "\n  ],"
    cmd = "date -u +%Y-%m-%dT%H:%M:%SZ"; cmd | getline ts; close(cmd)
    printf "  \"generated\": \"%s\",\n", ts
    printf "  \"benchtime\": \"%s\"\n", benchtime
    print "}"
  }
' benchtime="$BENCHTIME" "$RAW" > "$OUT"

# Sanity: the artifact must parse and actually contain benchmarks.
grep -q '"name":"Benchmark' "$OUT" || { echo "bench_adaptive: no benchmark results captured" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json; d = json.load(open('$OUT')); assert d['benchmarks']"
fi
echo "wrote $OUT"
