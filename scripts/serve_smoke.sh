#!/usr/bin/env bash
# Smoke test for `dbs3 serve`: build the binary, dump the Wisconsin relation
# as typed CSV, serve it back over HTTP, and drive a scripted curl session —
# ad-hoc placeholder query, prepare/exec/exec/close, stats. Fails on any
# non-zero exit, a missing stream message, or an empty result.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
workdir=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$workdir"' EXIT

go build -o "$workdir/dbs3" ./cmd/dbs3

# The Wisconsin CSVs the server loads.
"$workdir/dbs3" dump -rel wisc -wisc 5000 -degree 8 -o "$workdir/wisc.csv"
test -s "$workdir/wisc.csv"

"$workdir/dbs3" serve -addr "$ADDR" -demo=false \
  -csv "$workdir/wisc.csv" -csvkey unique2 -degree 8 -budget 4 &
server_pid=$!

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null

# Ad-hoc query with a `?` placeholder: the NDJSON stream must carry a
# header, at least one row chunk, and a done footer with the right count.
out=$(curl -fsS -X POST "http://$ADDR/query" \
  -d '{"sql":"SELECT unique2 FROM wisc WHERE unique1 < ?","args":[25]}')
echo "$out" | grep -q '"header"' || { echo "missing header: $out"; exit 1; }
echo "$out" | grep -q '"rows"' || { echo "missing (empty?) rows: $out"; exit 1; }
echo "$out" | grep -q '"rowCount":25,' || { echo "bad footer: $out"; exit 1; }

# Compile once, execute twice with different bindings.
stmt=$(curl -fsS -X POST "http://$ADDR/prepare" \
  -d '{"sql":"SELECT two, COUNT(*) FROM wisc WHERE unique1 < ? GROUP BY two"}')
id=$(echo "$stmt" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "prepare returned no id: $stmt"; exit 1; }
curl -fsS -X POST "http://$ADDR/stmt/$id/exec" -d '{"args":[100]}' \
  | grep -q '"done"' || { echo "exec 1 did not complete"; exit 1; }
curl -fsS -X POST "http://$ADDR/stmt/$id/exec" -d '{"args":[2000]}' \
  | grep -q '"rowCount":2,' || { echo "exec 2 bad result"; exit 1; }
curl -fsS -X DELETE "http://$ADDR/stmt/$id" -o /dev/null

# The ledger balances: 3 completed queries, nothing failed, stuck or shed.
stats=$(curl -fsS "http://$ADDR/stats")
for want in '"completed":3' '"failed":0' '"activeThreads":0' '"rejected":0'; do
  echo "$stats" | grep -q "$want" || { echo "stats missing $want: $stats"; exit 1; }
done

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "serve smoke OK"
