package dbs3

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRelationsSorted: the catalog listing is deterministic.
func TestRelationsSorted(t *testing.T) {
	db := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := db.CreateWisconsin(name, 100, 4, "unique2", 1); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Relations()
	want := []string{"alpha", "mid", "zeta"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Relations() = %v, want %v", got, want)
	}
}

// TestQueryErrorPaths covers the facade's option validation and unknown
// relations, with both nil and non-nil Options.
func TestQueryErrorPaths(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 200, 4, "unique2", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM wisc", nil); err != nil {
		t.Errorf("nil Options rejected: %v", err)
	}
	if _, err := db.Query("SELECT * FROM wisc", &Options{}); err != nil {
		t.Errorf("zero Options rejected: %v", err)
	}
	if _, err := db.Query("SELECT * FROM wisc", &Options{Strategy: "lifo"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := db.Query("SELECT * FROM wisc", &Options{JoinAlgo: "sort-merge"}); err == nil {
		t.Error("unknown join algorithm accepted")
	}
	if _, err := db.Query("SELECT * FROM nope", nil); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := db.Explain("SELECT * FROM wisc", nil); err != nil {
		t.Errorf("Explain with nil Options rejected: %v", err)
	}
	if _, err := db.Explain("SELECT * FROM wisc", &Options{JoinAlgo: "sort-merge"}); err == nil {
		t.Error("Explain accepted unknown join algorithm")
	}
	if _, err := db.Explain("SELECT * FROM nope", nil); err == nil {
		t.Error("Explain accepted unknown relation")
	}
}

// TestQueryContextCancel cancels a heavy query mid-execution; it must return
// context.Canceled promptly instead of running to completion.
func TestQueryContextCancel(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("bigA", 40_000, 16, "unique2", 7); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateWisconsin("bigB", 40_000, 16, "unique2", 8); err != nil {
		t.Fatal(err)
	}
	heavy := "SELECT * FROM bigA JOIN bigB ON bigA.unique2 = bigB.unique2"
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := func() error {
		rows, err := db.QueryContext(ctx, heavy, &Options{JoinAlgo: "nested-loop", Threads: 2})
		if err != nil {
			return err
		}
		_, err = rows.All()
		return err
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled query took %v to return", elapsed)
	}

	// Pre-cancelled context: no work at all.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := db.QueryContext(done, "SELECT * FROM bigA", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
}

// TestManagerFeedbackLoop is the acceptance test for the measured-utilization
// loop: with concurrent load on the QueryManager, every admitted
// auto-threaded query chooses fewer threads than the same query run alone,
// and the total allocated threads never exceed the budget.
func TestManagerFeedbackLoop(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 20_000, 16, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateWisconsin("bigA", 60_000, 16, "unique2", 7); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateWisconsin("bigB", 60_000, 16, "unique2", 8); err != nil {
		t.Fatal(err)
	}
	const budget = 8
	m := db.Manager(ManagerConfig{Budget: budget})
	probe := "SELECT unique2 FROM wisc WHERE unique1 < 10000"

	// Baseline: the probe alone on an idle manager.
	alone, err := db.QueryAll(probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if alone.Threads < 2 {
		t.Fatalf("baseline query uses %d threads; too small to observe reduction", alone.Threads)
	}
	if alone.Utilization != 0 {
		t.Fatalf("idle utilization = %v, want 0", alone.Utilization)
	}

	// Background load: a heavy nested-loop join holding 2 of the 8 threads
	// until cancelled.
	bgCtx, bgCancel := context.WithCancel(context.Background())
	bgDone := make(chan struct{})
	go func() {
		defer close(bgDone)
		heavy := "SELECT * FROM bigA JOIN bigB ON bigA.unique2 = bigB.unique2"
		rows, err := db.QueryContext(bgCtx, heavy, &Options{JoinAlgo: "nested-loop", Threads: 2})
		if err == nil {
			rows.All() // drains until the cancellation aborts the query
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for m.Stats().ThreadsInFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background query never started")
		}
		time.Sleep(time.Millisecond)
	}

	// K concurrent probes: each admitted while the background query holds
	// threads, so each measures utilization > 0 and shrinks.
	const K = 4
	var wg sync.WaitGroup
	results := make([]*Result, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = db.QueryAll(probe, nil)
		}(i)
	}
	wg.Wait()
	bgCancel()
	<-bgDone

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("probe %d: %v", i, errs[i])
		}
		r := results[i]
		if r.Utilization <= 0 {
			t.Errorf("probe %d measured utilization %v, want > 0", i, r.Utilization)
		}
		if r.Threads >= alone.Threads {
			t.Errorf("probe %d used %d threads under load, not reduced from %d alone", i, r.Threads, alone.Threads)
		}
		if r.Threads < 1 {
			t.Errorf("probe %d used %d threads", i, r.Threads)
		}
		if rowSet(r.Data) != rowSet(alone.Data) {
			t.Errorf("probe %d returned different rows under load", i)
		}
	}
	st := m.Stats()
	if st.PeakThreads > budget {
		t.Errorf("peak allocated threads %d exceeded budget %d", st.PeakThreads, budget)
	}
	if st.ThreadsInFlight != 0 {
		t.Errorf("threads still in flight after drain: %d", st.ThreadsInFlight)
	}
}

// rowSet renders rows order-independently: parallel execution emits result
// tuples in a nondeterministic order.
func rowSet(data [][]any) string {
	lines := make([]string, len(data))
	for i, row := range data {
		lines[i] = fmt.Sprint(row)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestConcurrentQueryCreateStress races queries against relation creation;
// run under -race this proves the Database locking (and the engine's
// instance-local execution state).
func TestConcurrentQueryCreateStress(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 5_000, 8, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	db.Manager(ManagerConfig{Budget: 8})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rows, err := db.QueryAll("SELECT two, COUNT(*) FROM wisc WHERE two = 0 GROUP BY two", nil)
				if err != nil {
					t.Error(err)
					return
				}
				if len(rows.Data) != 1 || rows.Data[0][1].(int64) != 2500 {
					t.Errorf("worker %d: wrong result %v", w, rows.Data)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				name := fmt.Sprintf("aux_%d_%d", w, i)
				if err := db.CreateWisconsin(name, 500, 4, "unique2", int64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(db.Relations()); got != 13 {
		t.Errorf("relation count = %d, want 13", got)
	}
}
