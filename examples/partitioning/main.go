// Decoupling the degree of parallelism from the degree of partitioning: the
// paper's central design point (§1, §5.6). With the thread count fixed,
// raising the degree of partitioning d shrinks the sequential unit of work,
// so a skewed triggered join balances better — the mechanism behind Figures
// 18-19. The example predicts KSR1 times across d with the calibrated
// simulator, then runs one configuration on the real engine to show d and
// the thread count are set independently.
package main

import (
	"fmt"
	"log"

	"dbs3"
)

const (
	aCard   = 100_000
	bCard   = 10_000
	threads = 20
	theta   = 0.6
)

func main() {
	fmt.Printf("IdealJoin, %d threads, Zipf %.1f, LPT; varying degree of partitioning\n\n", threads, theta)
	fmt.Println("degree | skewed time (s) | unskewed time (s) | skew overhead v")
	for _, d := range []int{20, 100, 250, 500, 1000} {
		skewed, err := dbs3.PredictIdealJoin(aCard, bCard, d, threads, theta, "lpt")
		if err != nil {
			log.Fatal(err)
		}
		flat, err := dbs3.PredictIdealJoin(aCard, bCard, d, threads, 0, "lpt")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d | %15.2f | %17.2f | %14.3f\n", d, skewed, flat, skewed/flat-1)
	}
	fmt.Println("\nShape check (paper Figure 18): the skew overhead v collapses as d grows,")
	fmt.Println("because one activation = one fragment and LPT can balance small fragments.")

	// On the real engine: same thread count against two different degrees
	// of partitioning — the decoupling the static model cannot do.
	fmt.Println("\nReal engine, 6 threads, d = 12 vs d = 120 (Zipf 0.8):")
	for _, d := range []int{12, 120} {
		db := dbs3.New()
		if err := db.CreateJoinPair("", 24_000, 2_400, d, 0.8); err != nil {
			log.Fatal(err)
		}
		// The cursor streams the join result; we only need the row count,
		// so drain it without materializing.
		rows, err := db.Query("SELECT * FROM A JOIN B ON A.k = B.k",
			&dbs3.Options{Threads: 6, Strategy: "lpt", JoinAlgo: "nested-loop"})
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		sizes, _ := db.FragmentSizes("A")
		maxFrag := 0
		for _, s := range sizes {
			if s > maxFrag {
				maxFrag = s
			}
		}
		var join dbs3.OperatorStats
		for _, op := range rows.Operators() {
			if op.Name == "join" {
				join = op
			}
		}
		fmt.Printf("  d=%3d: %d rows, join pool=%d threads over %d instances, largest fragment=%d tuples\n",
			d, n, join.Threads, join.Instances, maxFrag)
	}
}
