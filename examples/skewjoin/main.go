// Skew handling: the paper's Experiment 1 (§5.4) end to end. For each skew
// level the example (a) executes the joins on the real goroutine engine to
// verify the answers are identical under every strategy, and (b) predicts
// the KSR1 response times with the calibrated simulator — the deterministic
// reproduction of Figures 12-13, independent of how many cores this host
// has.
package main

import (
	"fmt"
	"log"

	"dbs3"
)

const (
	aCard   = 100_000
	bCard   = 10_000
	degree  = 200
	threads = 10
)

func main() {
	fmt.Printf("A=%d, B'=%d, d=%d, %d threads (paper Figures 12-13)\n\n", aCard, bCard, degree, threads)
	fmt.Println("theta | ideal/random (s) | ideal/lpt (s) | assoc/random (s)")
	for _, theta := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		idealRandom, err := dbs3.PredictIdealJoin(aCard, bCard, degree, threads, theta, "random")
		if err != nil {
			log.Fatal(err)
		}
		idealLPT, err := dbs3.PredictIdealJoin(aCard, bCard, degree, threads, theta, "lpt")
		if err != nil {
			log.Fatal(err)
		}
		assoc, err := dbs3.PredictAssocJoin(aCard, bCard, degree, threads, theta, "random")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.1f | %16.2f | %13.2f | %16.2f\n", theta, idealRandom, idealLPT, assoc)
	}
	fmt.Println("\nShape check (paper): Random grows with theta, LPT stays flat until")
	fmt.Println("theta=0.8, AssocJoin is insensitive to skew.")

	// Now verify on the real engine (scaled down: this is about answers,
	// not wall time) that strategy and plan shape never change the result.
	fmt.Println("\nVerifying result equivalence on the real engine...")
	db := dbs3.New()
	if err := db.CreateJoinPair("", 20_000, 2_000, 40, 1); err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, cfg := range []struct {
		name string
		sql  string
		opt  *dbs3.Options
	}{
		{"ideal/random", "SELECT * FROM A JOIN B ON A.k = B.k", &dbs3.Options{Threads: 6, Strategy: "random", JoinAlgo: "nested-loop"}},
		{"ideal/lpt", "SELECT * FROM A JOIN B ON A.k = B.k", &dbs3.Options{Threads: 6, Strategy: "lpt", JoinAlgo: "nested-loop"}},
		{"assoc/random", "SELECT * FROM A JOIN Br ON A.k = Br.k", &dbs3.Options{Threads: 6, Strategy: "random", JoinAlgo: "hash"}},
	} {
		// Stream the result and count: the cursor never holds the 20K join
		// rows in memory at once.
		rows, err := db.Query(cfg.sql, cfg.opt)
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		counts[cfg.name] = n
	}
	for name, n := range counts {
		status := "ok"
		if n != 20_000 {
			status = "WRONG"
		}
		fmt.Printf("  %-13s %d rows %s\n", name, n, status)
	}
}
