// ESQL compilation: show how the compiler picks the parallel plan shape from
// partitioning metadata. The same logical join compiles to the triggered
// IdealJoin when the operands are co-partitioned, and to the repartitioning
// AssocJoin (transmit + pipelined join) when they are not; both plans are
// printed as Graphviz DOT and then executed.
package main

import (
	"fmt"
	"log"

	"dbs3"
)

func main() {
	db := dbs3.New()
	if err := db.CreateJoinPair("", 5_000, 500, 10, 0.3); err != nil {
		log.Fatal(err)
	}

	// B is co-partitioned with A on k: IdealJoin (no transmit).
	ideal := "SELECT A.id, B.id FROM A JOIN B ON A.k = B.k WHERE A.id < 10"
	dot, err := db.Explain(ideal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- co-partitioned operands compile to a triggered join --")
	fmt.Print(dot)

	// Br is placed on id: the compiler inserts a transmit that redistributes
	// Br's tuples on k into a pipelined join against A's fragments.
	assoc := "SELECT A.id, Br.id FROM A JOIN Br ON A.k = Br.k WHERE A.id < 10"
	dot, err = db.Explain(assoc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- a mis-partitioned operand forces dynamic redistribution --")
	fmt.Print(dot)

	for _, sql := range []string{ideal, assoc} {
		res, err := db.QueryAll(sql, &dbs3.Options{Threads: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n-> %d rows, operators:", sql, len(res.Data))
		for _, op := range res.Operators {
			fmt.Printf(" %s(x%d)", op.Name, op.Threads)
		}
		fmt.Println()
	}
}
