// Quickstart: create a Wisconsin relation and the paper's join pair, then
// run a selection, a co-partitioned join and a grouped aggregate through the
// adaptive parallel execution engine — using the serving-scale API: prepared
// statements (compile once, execute many) and streaming row cursors.
package main

import (
	"fmt"
	"log"

	"dbs3"
)

func main() {
	db := dbs3.New()

	// A 10K-tuple Wisconsin relation, hash-partitioned on unique2 into 16
	// fragments; and the paper's A/B/Br join trio (A skewed with Zipf 0.5).
	if err := db.CreateWisconsin("wisc", 10_000, 16, "unique2", 42); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateJoinPair("", 10_000, 1_000, 20, 0.5); err != nil {
		log.Fatal(err)
	}

	// 1. A parallel selection (triggered filter over 16 fragments), prepared
	// once and iterated with the cursor: rows stream out of the engine as
	// the filter instances produce them.
	stmt, err := db.Prepare("SELECT unique1, unique2 FROM wisc WHERE unique1 < 5", nil)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := stmt.Query()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection on %d threads:\n", rows.Threads())
	for rows.Next() {
		var u1, u2 int64
		if err := rows.Scan(&u1, &u2); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  unique1=%d unique2=%d\n", u1, u2)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// 2. A co-partitioned join: the compiler recognizes that A and B are
	// both partitioned on k and emits the triggered IdealJoin plan. All()
	// materializes the stream for callers that want the whole table.
	res, err := db.QueryAll("SELECT * FROM A JOIN B ON A.k = B.k", &dbs3.Options{Threads: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nideal join: %d rows on %d threads\n", len(res.Data), res.Threads)
	for _, op := range res.Operators {
		fmt.Printf("  %-10s threads=%d strategy=%s activations=%d\n", op.Name, op.Threads, op.Strategy, op.Activations)
	}

	// 3. A grouped aggregate (pipelined, redistributed on the group key),
	// again through the cursor.
	rows, err = db.Query("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Printf("\ngroup by:\n")
	for rows.Next() {
		var ten, count int64
		if err := rows.Scan(&ten, &count); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ten=%d count=%d\n", ten, count)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
