// Quickstart: create a Wisconsin relation and the paper's join pair, then
// run a selection, a co-partitioned join and a grouped aggregate through the
// adaptive parallel execution engine.
package main

import (
	"fmt"
	"log"

	"dbs3"
)

func main() {
	db := dbs3.New()

	// A 10K-tuple Wisconsin relation, hash-partitioned on unique2 into 16
	// fragments; and the paper's A/B/Br join trio (A skewed with Zipf 0.5).
	if err := db.CreateWisconsin("wisc", 10_000, 16, "unique2", 42); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateJoinPair("", 10_000, 1_000, 20, 0.5); err != nil {
		log.Fatal(err)
	}

	// 1. A parallel selection (triggered filter over 16 fragments).
	rows, err := db.Query("SELECT unique1, unique2 FROM wisc WHERE unique1 < 5", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection: %d rows on %d threads\n", len(rows.Data), rows.Threads)
	for _, r := range rows.Data {
		fmt.Printf("  unique1=%v unique2=%v\n", r[0], r[1])
	}

	// 2. A co-partitioned join: the compiler recognizes that A and B are
	// both partitioned on k and emits the triggered IdealJoin plan.
	rows, err = db.Query("SELECT * FROM A JOIN B ON A.k = B.k", &dbs3.Options{Threads: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nideal join: %d rows on %d threads\n", len(rows.Data), rows.Threads)
	for _, op := range rows.Operators {
		fmt.Printf("  %-10s threads=%d strategy=%s activations=%d\n", op.Name, op.Threads, op.Strategy, op.Activations)
	}

	// 3. A grouped aggregate (pipelined, redistributed on the group key).
	rows, err = db.Query("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngroup by: %d groups\n", len(rows.Data))
	for _, r := range rows.Data {
		fmt.Printf("  ten=%v count=%v\n", r[0], r[1])
	}
}
