package dbs3

import (
	"strings"
	"testing"
)

const ordersCSV = `order:INT,customer:STRING,amount:INT
1,ann,100
2,bob,250
3,ann,50
4,eve,75
5,bob,25
6,ann,10
`

func TestLoadCSVAndQuery(t *testing.T) {
	db := New()
	if err := db.LoadCSV("orders", strings.NewReader(ordersCSV), "order", 3); err != nil {
		t.Fatal(err)
	}
	if card, _ := db.Cardinality("orders"); card != 6 {
		t.Fatalf("cardinality = %d", card)
	}
	rows, err := db.QueryAll("SELECT customer, SUM(amount) FROM orders GROUP BY customer", nil)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]int64{}
	for _, r := range rows.Data {
		sums[r[0].(string)] = r[1].(int64)
	}
	want := map[string]int64{"ann": 160, "bob": 275, "eve": 75}
	for k, v := range want {
		if sums[k] != v {
			t.Errorf("sum[%s] = %d, want %d", k, sums[k], v)
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := New()
	if err := db.LoadCSV("x", strings.NewReader("bad header\n"), "k", 2); err == nil {
		t.Error("bad csv accepted")
	}
	if err := db.LoadCSV("x", strings.NewReader(ordersCSV), "absent", 2); err == nil {
		t.Error("bad key accepted")
	}
}

func TestDumpCSVRoundTrip(t *testing.T) {
	db := New()
	if err := db.LoadCSV("orders", strings.NewReader(ordersCSV), "order", 2); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := db.DumpCSV("orders", &buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.LoadCSV("orders", strings.NewReader(buf.String()), "order", 4); err != nil {
		t.Fatal(err)
	}
	if card, _ := db2.Cardinality("orders"); card != 6 {
		t.Errorf("round trip cardinality = %d", card)
	}
	if err := db.DumpCSV("absent", &buf); err == nil {
		t.Error("missing relation accepted")
	}
}

func TestResultString(t *testing.T) {
	db := New()
	if err := db.LoadCSV("orders", strings.NewReader(ordersCSV), "order", 2); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryAll("SELECT customer, amount FROM orders WHERE amount > 60", &Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := rows.String()
	for _, want := range []string{"customer", "amount", "ann", "(3 rows, 2 threads)", "filter", "store"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
