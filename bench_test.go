package dbs3_test

// The benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (regenerated on the virtual-time simulator; key scalars are
// attached as custom metrics), plus real-engine benchmarks and the ablation
// benches DESIGN.md calls out. Run everything with:
//
//	go test -bench=. -benchmem
//
// and print the full figure tables with cmd/dbs3-bench.

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"dbs3"
	"dbs3/internal/baseline"
	"dbs3/internal/core"
	"dbs3/internal/experiments"
	"dbs3/internal/lera"
	"dbs3/internal/sim"
	"dbs3/internal/workload"
	"dbs3/internal/zipf"
)

// --- Figure benches -------------------------------------------------------

func BenchmarkFig08RemoteVsLocal(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig8()
	}
	remote, _ := f.Find("Remote execution").Y(30)
	local, _ := f.Find("Local execution").Y(30)
	b.ReportMetric((remote-local)/remote*100, "remote_overhead_%")
}

func BenchmarkFig09RemoteLocalDelta(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig9()
	}
	d5, _ := f.Series[0].Y(5)
	d30, _ := f.Series[0].Y(30)
	b.ReportMetric(d5, "delta_ms_at_5")
	b.ReportMetric(d30, "delta_ms_at_30")
}

func BenchmarkFig12AssocJoinSkew(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig12()
	}
	m := f.Find("Measured execution time (Random)")
	flat, _ := m.Y(0)
	skew, _ := m.Y(1)
	b.ReportMetric((skew/flat-1)*100, "skew_cost_%")
}

func BenchmarkFig13IdealJoinSkew(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig13()
	}
	random, _ := f.Find("Random consumption strategy").Y(1)
	lpt, _ := f.Find("LPT consumption strategy").Y(1)
	b.ReportMetric(random, "random_s_at_zipf1")
	b.ReportMetric(lpt, "lpt_s_at_zipf1")
}

func BenchmarkFig14AssocJoinSpeedup(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig14()
	}
	un, _ := f.Find("Unskewed data").Y(70)
	sk, _ := f.Find("Skewed data (Zipf = 1)").Y(70)
	b.ReportMetric(un, "speedup_at_70")
	b.ReportMetric(sk, "skewed_speedup_at_70")
}

func BenchmarkFig15IdealJoinSpeedup(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig15()
	}
	for _, s := range []struct{ name, metric string }{
		{"Zipf = 0.4", "ceiling_zipf04"},
		{"Zipf = 0.6", "ceiling_zipf06"},
		{"Zipf = 1", "ceiling_zipf1"},
	} {
		peak := 0.0
		for _, p := range f.Find(s.name).Points {
			if p.Y > peak {
				peak = p.Y
			}
		}
		b.ReportMetric(peak, s.metric)
	}
}

func BenchmarkFig16PartitioningOverhead(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig16()
	}
	slope := func(name string) float64 {
		s := f.Find(name)
		y1, _ := s.Y(100)
		y2, _ := s.Y(1500)
		return (y2 - y1) / 1400 * 1000 // ms per degree
	}
	b.ReportMetric(slope("Overhead for IdealJoin"), "ideal_ms_per_degree")
	b.ReportMetric(slope("Overhead for AssocJoin"), "assoc_ms_per_degree")
}

func BenchmarkFig17IndexPartitioning(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig17()
	}
	argmin := func(name string) float64 {
		s := f.Find(name)
		bestX, bestY := 0.0, 1e18
		for _, p := range s.Points {
			if p.Y < bestY {
				bestX, bestY = p.X, p.Y
			}
		}
		return bestX
	}
	b.ReportMetric(argmin("AssocJoin execution time"), "assoc_optimal_d")
	b.ReportMetric(argmin("IdealJoin execution time"), "ideal_optimal_d")
}

func BenchmarkFig18SkewOverheadVsPartitioning(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig18()
	}
	v20, _ := f.Find("Ideal Join (nested loop)").Y(20)
	v1500, _ := f.Find("Ideal Join (nested loop)").Y(1500)
	b.ReportMetric(v20, "v_at_d20")
	b.ReportMetric(v1500, "v_at_d1500")
}

func BenchmarkFig19SavedTime(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig19()
	}
	s := f.Find("Saved time, Ideal Join (temp. index)")
	final := s.Points[len(s.Points)-1].Y
	t0, _ := f.Find("T0 (unskewed execution time)").Y(1500)
	b.ReportMetric(final, "saved_s_at_d1500")
	b.ReportMetric(t0, "t0_s")
}

// --- Real-engine benches --------------------------------------------------

func engineJoinBench(b *testing.B, assoc bool, algo lera.JoinAlgo, opts core.Options, theta float64) {
	b.Helper()
	db, err := workload.NewJoinDB(20_000, 2_000, 40, theta)
	if err != nil {
		b.Fatal(err)
	}
	var plan *lera.Plan
	if assoc {
		plan, err = db.AssocJoinPlan(algo)
	} else {
		plan, err = db.IdealJoinPlan(algo)
	}
	if err != nil {
		b.Fatal(err)
	}
	rels := db.Relations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Execute(plan, rels, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outputs["Res"].Cardinality() != db.ExpectedJoinCount() {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkEngineIdealJoinHash(b *testing.B) {
	engineJoinBench(b, false, lera.HashJoin, core.Options{Threads: 4}, 0)
}

func BenchmarkEngineIdealJoinTempIndex(b *testing.B) {
	engineJoinBench(b, false, lera.TempIndex, core.Options{Threads: 4}, 0)
}

func BenchmarkEngineIdealJoinNestedLoop(b *testing.B) {
	engineJoinBench(b, false, lera.NestedLoop, core.Options{Threads: 4}, 0)
}

func BenchmarkEngineAssocJoinHash(b *testing.B) {
	engineJoinBench(b, true, lera.HashJoin, core.Options{Threads: 4}, 0)
}

func BenchmarkEngineSkewedRandom(b *testing.B) {
	engineJoinBench(b, false, lera.HashJoin, core.Options{Threads: 4, Strategy: core.StrategyRandom}, 1)
}

func BenchmarkEngineSkewedLPT(b *testing.B) {
	engineJoinBench(b, false, lera.HashJoin, core.Options{Threads: 4, Strategy: core.StrategyLPT}, 1)
}

// --- Ablation benches (DESIGN.md §6) ---------------------------------------

// Internal activation cache: batch size 1 (per-activation locking) vs the
// default 16 vs 64 on a pipelined join.
func BenchmarkAblationCacheSize1(b *testing.B) {
	engineJoinBench(b, true, lera.HashJoin, core.Options{Threads: 4, CacheSize: 1}, 0)
}

func BenchmarkAblationCacheSize16(b *testing.B) {
	engineJoinBench(b, true, lera.HashJoin, core.Options{Threads: 4, CacheSize: 16}, 0)
}

func BenchmarkAblationCacheSize64(b *testing.B) {
	engineJoinBench(b, true, lera.HashJoin, core.Options{Threads: 4, CacheSize: 64}, 0)
}

// Static thread-per-instance baseline vs the DBS3 pool, real execution.
func BenchmarkAblationThreadPerInstance(b *testing.B) {
	db, err := workload.NewJoinDB(20_000, 2_000, 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := baseline.ThreadPerInstanceJoin(db.A, db.B, "k", "k")
		if err != nil {
			b.Fatal(err)
		}
		if res.Cardinality() != db.ExpectedJoinCount() {
			b.Fatal("wrong result")
		}
	}
}

// Dynamic page-based model (XPRS style) on the same join.
func BenchmarkAblationDynamicPages(b *testing.B) {
	db, err := workload.NewJoinDB(20_000, 2_000, 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	buildRel, probeRel := db.A.Union(), db.B.Union()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := baseline.DynamicJoin{Threads: 4}.Run(buildRel, probeRel, "k", "k")
		if err != nil {
			b.Fatal(err)
		}
		if res.Cardinality() != db.ExpectedJoinCount() {
			b.Fatal("wrong result")
		}
	}
}

// Virtual-time ablation: DBS3 pool vs the static model under skew, as a
// makespan ratio (the scheduling win independent of host cores).
func BenchmarkAblationPoolVsStaticSim(b *testing.B) {
	sizes := zipf.Sizes(100_000, 200, 0.8)
	costs := make([]float64, len(sizes))
	for i, s := range sizes {
		costs[i] = float64(s)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		static := baseline.StaticMakespan(costs, 20)
		pool := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: 20, Strategy: sim.LPT}, sim.Config{Processors: 20})
		ratio = static / pool.Makespan
	}
	b.ReportMetric(ratio, "static/pool_makespan")
}

// Main-queue affinity: the engine's secondary-pick counter under balanced vs
// skewed load, surfaced as a metric.
func BenchmarkAblationQueueAffinity(b *testing.B) {
	db, err := workload.NewJoinDB(20_000, 2_000, 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := db.AssocJoinPlan(lera.HashJoin)
	if err != nil {
		b.Fatal(err)
	}
	rels := db.Relations()
	var picks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Execute(plan, rels, core.Options{Threads: 4})
		if err != nil {
			b.Fatal(err)
		}
		picks = res.Stats[1].SecondaryPicks.Load()
	}
	b.ReportMetric(float64(picks), "secondary_picks")
}

// --- Batch-at-a-time hot-path benches (BENCH_core.json) ---------------------

// The CoreHotPath pair measures the batched, vectorized data plane against
// the per-tuple protocol (BatchGrain 1 + NoVectorize: one queue push per
// tuple, one OnTuple call per activation — the paper's original execution
// model) on the same plan: same operators, same allocation, only transport
// and processing grain differ. scripts/bench_core.sh runs them with
// -benchmem, archives BENCH_core.json, and gates CI on the batched
// pipeline's allocs/op and on the vectorized-over-per-tuple speedup floor.
//
// GC is excluded from the timed region (disabled during iterations, with a
// full collection between them, identically for both variants): collection
// cost scales with the materialized result and the generated database — the
// same work in both configurations — and on small heaps its scheduling noise
// swamps the protocol difference the pair exists to measure. The GC-pressure
// difference between the paths is still gated, just directly: via allocs/op
// (the vectorized pipeline allocates ~5x fewer objects than the per-tuple
// one; see MAX_PIPELINED_JOIN_ALLOCS in scripts/bench_core.sh).

// runGCExcluded disables the collector for the benchmark loop, collecting
// manually outside the timer before each iteration.
func runGCExcluded(b *testing.B, iter func()) {
	b.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
		iter()
	}
}

func coreHotPathPipelinedJoin(b *testing.B, grain int, noVec bool) {
	b.Helper()
	// Probe-stream heavy shape: a small build side and a 40k-tuple
	// redistributed probe stream keep the queue protocol — the thing the
	// two variants differ in — the dominant cost. Degree 8 keeps the
	// per-destination route buffers actually filling to the grain (at high
	// degrees the stream spreads so thin that most flushes are partial).
	db, err := workload.NewJoinDB(2_000, 40_000, 8, 0)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := db.AssocJoinPlan(lera.HashJoin)
	if err != nil {
		b.Fatal(err)
	}
	rels := db.Relations()
	opts := core.Options{Threads: 4, BatchGrain: grain, NoVectorize: noVec}
	b.ReportAllocs()
	runGCExcluded(b, func() {
		res, err := core.Execute(plan, rels, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outputs["Res"].Cardinality() != db.ExpectedJoinCount() {
			b.Fatal("wrong result")
		}
	})
}

func BenchmarkCoreHotPathPipelinedJoinBatched(b *testing.B) {
	coreHotPathPipelinedJoin(b, 0, false)
}

// Grain1 is the per-tuple baseline the speedup gate divides by: one queue
// push per tuple and per-tuple OnTuple processing (NoVectorize — without it
// the consumer side would still hand popped multi-tuple runs to OnBatch even
// at transport grain 1).
func BenchmarkCoreHotPathPipelinedJoinGrain1(b *testing.B) {
	coreHotPathPipelinedJoin(b, 1, true)
}

func coreHotPathAggregate(b *testing.B, grain int, noVec bool) {
	b.Helper()
	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", 50_000, 16, "unique2", 42); err != nil {
		b.Fatal(err)
	}
	opt := &dbs3.Options{Threads: 4, BatchGrain: grain, NoVectorize: noVec}
	b.ReportAllocs()
	runGCExcluded(b, func() {
		res, err := db.QueryAll("SELECT ten, SUM(unique1) FROM wisc GROUP BY ten", opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Data) != 10 {
			b.Fatalf("wrong result: %d groups", len(res.Data))
		}
	})
}

func BenchmarkCoreHotPathAggregateBatched(b *testing.B) { coreHotPathAggregate(b, 0, false) }
func BenchmarkCoreHotPathAggregateGrain1(b *testing.B)  { coreHotPathAggregate(b, 1, true) }

// --- Spill benches ---------------------------------------------------------

// coreSpillJoin runs the same build-heavy hash join with and without a
// working-memory budget. Budget 0 is the in-memory reference; a tiny budget
// forces the build side through Grace partitioning on disk, and the spilled
// byte/pass totals are attached as custom metrics so bench_spill.sh can
// report the cost of degrading to disk next to the slowdown it buys.
func coreSpillJoin(b *testing.B, budget int64) {
	b.Helper()
	db, err := workload.NewJoinDB(20_000, 10_000, 8, 0)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := db.AssocJoinPlan(lera.HashJoin)
	if err != nil {
		b.Fatal(err)
	}
	rels := db.Relations()
	opts := core.Options{Threads: 4, MemoryBudget: budget, SpillDir: b.TempDir()}
	var spilledBytes, spillPasses int64
	b.ReportAllocs()
	runGCExcluded(b, func() {
		res, err := core.Execute(plan, rels, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outputs["Res"].Cardinality() != db.ExpectedJoinCount() {
			b.Fatal("wrong result")
		}
		spilledBytes, spillPasses = 0, 0
		for _, st := range res.Stats {
			spilledBytes += st.SpilledBytes.Load()
			spillPasses += st.SpillPasses.Load()
		}
	})
	if budget > 0 && spilledBytes == 0 {
		b.Fatal("budgeted run did not spill")
	}
	b.ReportMetric(float64(spilledBytes), "spilledB/op")
	b.ReportMetric(float64(spillPasses), "spillpasses/op")
}

func BenchmarkSpillJoinInMemory(b *testing.B) { coreSpillJoin(b, 0) }
func BenchmarkSpillJoinBudgeted(b *testing.B) { coreSpillJoin(b, 64<<10) }

// --- Concurrent runtime benches --------------------------------------------

func concurrentDB(b *testing.B) *dbs3.Database {
	b.Helper()
	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", 20_000, 16, "unique2", 42); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateJoinPair("", 10_000, 1_000, 20, 0); err != nil {
		b.Fatal(err)
	}
	return db
}

func managedThroughput(b *testing.B, clients int) {
	db := concurrentDB(b)
	m := db.Manager(dbs3.ManagerConfig{Budget: 8})
	stmts := []string{
		"SELECT unique2 FROM wisc WHERE unique1 < 10000",
		"SELECT * FROM A JOIN B ON A.k = B.k",
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := (b.N + clients - 1) / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				stmt := stmts[(c+i)%len(stmts)]
				if _, err := db.QueryAll(stmt, nil); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := m.Stats()
	b.ReportMetric(float64(st.PeakThreads), "peak_threads")
}

// Concurrent query throughput through the QueryManager: the feedback loop
// shrinks per-query parallelism as client concurrency grows, so total
// allocation stays within one shared budget instead of oversubscribing the
// machine clients-fold.
func BenchmarkManagedThroughput1Client(b *testing.B)  { managedThroughput(b, 1) }
func BenchmarkManagedThroughput4Clients(b *testing.B) { managedThroughput(b, 4) }
func BenchmarkManagedThroughput8Clients(b *testing.B) { managedThroughput(b, 8) }

// The same workload without a manager: every query schedules itself as if
// it owned the machine (the pre-runtime behavior), as a baseline.
func BenchmarkUnmanagedThroughput8Clients(b *testing.B) {
	db := concurrentDB(b)
	stmts := []string{
		"SELECT unique2 FROM wisc WHERE unique1 < 10000",
		"SELECT * FROM A JOIN B ON A.k = B.k",
	}
	const clients = 8
	b.ResetTimer()
	var wg sync.WaitGroup
	per := (b.N + clients - 1) / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				stmt := stmts[(c+i)%len(stmts)]
				if _, err := db.QueryAll(stmt, nil); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// Multi-chain adaptive throughput: concurrent clients run a Materialize
// GROUP BY — two chains with a thread renegotiation at the boundary — so
// every query returns its scan/filter chain's surplus threads to the budget
// before aggregating. The readmission counters are reported as metrics; the
// managed-vs-unmanaged benches above are the single-chain baseline.
func BenchmarkManagedAdaptiveMultiChain(b *testing.B) {
	db := concurrentDB(b)
	m := db.Manager(dbs3.ManagerConfig{Budget: 8})
	opt := &dbs3.Options{Materialize: true}
	const clients = 4
	b.ResetTimer()
	var wg sync.WaitGroup
	per := (b.N + clients - 1) / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := db.QueryAll("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", opt); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := m.Stats()
	b.ReportMetric(float64(st.PeakThreads), "peak_threads")
	if st.Completed > 0 {
		b.ReportMetric(float64(st.Readmissions)/float64(st.Completed), "readmissions/query")
		b.ReportMetric(float64(st.ThreadsReturnedEarly)/float64(st.Completed), "threads_returned/query")
	}
}

// Extension bench (§6 future work): the grain of parallelism lifts the
// skewed triggered join's ceiling.
func BenchmarkExtGrainOfParallelism(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.ExtGrain()
	}
	peak := func(name string) float64 {
		best := 0.0
		for _, p := range f.Find(name).Points {
			if p.Y > best {
				best = p.Y
			}
		}
		return best
	}
	b.ReportMetric(peak("Whole-fragment triggers (paper)"), "ceiling_whole")
	b.ReportMetric(peak("Grain = 2 probe tuples"), "ceiling_grain2")
}
