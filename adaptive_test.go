package dbs3

import (
	"strings"
	"testing"
)

// TestMaterializeQueryAdaptsMidFlight: a Materialize statement under a
// QueryManager renegotiates its reservation at the chain boundary — the
// per-chain trace surfaces on the cursor, the manager counts the
// readmissions, and the answer matches the single-chain plan's.
func TestMaterializeQueryAdaptsMidFlight(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 5_000, 8, "unique2", 7); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(ManagerConfig{Budget: 6})

	plain, err := db.QueryAll("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryAll("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", &Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != len(plain.Data) {
		t.Fatalf("materialized plan returned %d groups, plain %d", len(res.Data), len(plain.Data))
	}
	if len(res.ChainThreads) != 2 {
		t.Fatalf("ChainThreads = %v, want one grant per chain", res.ChainThreads)
	}
	for ci, g := range res.ChainThreads {
		if g < 1 || g > 6 {
			t.Errorf("chain %d granted %d threads outside [1, budget]", ci, g)
		}
	}
	st := m.Stats()
	if st.Readmissions != 2 {
		t.Errorf("Readmissions = %d, want 2 (one per chain)", st.Readmissions)
	}
	if st.PeakThreads > 6 {
		t.Errorf("peak threads %d exceeded the budget", st.PeakThreads)
	}
	if st.ThreadsInFlight != 0 {
		t.Errorf("threads leaked: %+v", st)
	}

	// The footer renders the trace.
	if s := res.String(); !strings.Contains(s, "chain threads") {
		t.Errorf("Result.String() missing the chain trace:\n%s", s)
	}

	// Unmanaged and single-chain cursors report no trace.
	rows, err := db.Query("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.All(); err != nil {
		t.Fatal(err)
	}
	if ct := rows.ChainThreads(); len(ct) != 0 {
		t.Errorf("single-chain trace = %v, want empty", ct)
	}
}

// TestExplainChainSplit: EXPLAIN foots the DOT graph with the per-chain
// allocation split, including the renegotiation wants of a Materialize plan.
func TestExplainChainSplit(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 2_000, 8, "unique2", 7); err != nil {
		t.Fatal(err)
	}
	db.Manager(ManagerConfig{Budget: 8})

	dot, err := db.Explain("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", &Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"// allocation:", "// chain 0:", "// chain 1:", "want=", "renegotiates"} {
		if !strings.Contains(dot, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, dot)
		}
	}
	single, err := db.Explain("SELECT unique2 FROM wisc WHERE unique1 < 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(single, "// chain 0:") || strings.Contains(single, "// chain 1:") {
		t.Errorf("single-chain EXPLAIN footer wrong:\n%s", single)
	}
}
