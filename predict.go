package dbs3

import (
	"fmt"

	"dbs3/internal/sim"
	"dbs3/internal/zipf"
)

// Prediction functions run the virtual-time simulator with the calibrated
// KSR1 cost model (the paper's 72-processor machine). They reproduce the
// evaluation's response-time behaviour deterministically, independent of the
// host's core count — on a laptop (or a 1-CPU container) the real engine
// cannot exhibit 70-way speed-ups, but the simulator can, which is how the
// figure harness (internal/experiments, cmd/dbs3-bench) regenerates the
// paper's results; DESIGN.md sketches the simulator column.

func simStrategy(strategy string) (sim.Kind, error) {
	switch strategy {
	case "", "auto", "random":
		return sim.Random, nil
	case "lpt":
		return sim.LPT, nil
	default:
		return 0, fmt.Errorf("dbs3: unknown strategy %q (random, lpt)", strategy)
	}
}

// PredictIdealJoin returns the simulated response time (in KSR1 seconds) of
// the triggered nested-loop IdealJoin: relations of aCard and bCard tuples
// in d fragments, A's fragment sizes following Zipf(theta), executed by
// `threads` threads under the given strategy.
func PredictIdealJoin(aCard, bCard, d, threads int, theta float64, strategy string) (float64, error) {
	if d <= 0 || aCard <= 0 || bCard <= 0 || threads <= 0 {
		return 0, fmt.Errorf("dbs3: cardinalities, degree and threads must be positive")
	}
	strat, err := simStrategy(strategy)
	if err != nil {
		return 0, err
	}
	m := sim.Calibrated()
	aSizes := zipf.Sizes(aCard, d, theta)
	bSizes := sim.UniformSizes(bCard, d)
	costs := m.NestedLoopTriggerCosts(aSizes, bSizes, bSizes)
	r := sim.Triggered(sim.TriggeredSpec{
		Costs: costs, Threads: threads, Strategy: strat,
		QueueOverhead: m.TriggeredQueueOverhead,
	}, m.Config(1))
	return r.Time, nil
}

// PredictAssocJoin returns the simulated response time (in KSR1 seconds) of
// the pipelined AssocJoin: B is redistributed at run time into a nested-loop
// join against A's fragments.
func PredictAssocJoin(aCard, bCard, d, threads int, theta float64, strategy string) (float64, error) {
	if d <= 0 || aCard <= 0 || bCard <= 0 || threads <= 0 {
		return 0, fmt.Errorf("dbs3: cardinalities, degree and threads must be positive")
	}
	strat, err := simStrategy(strategy)
	if err != nil {
		return 0, err
	}
	m := sim.Calibrated()
	cfg := m.Config(1)
	aSizes := zipf.Sizes(aCard, d, theta)
	bSizes := sim.UniformSizes(bCard, d)
	prod := m.TransmitTriggerCosts(bSizes)
	per := m.NestedLoopProbeCosts(aSizes)
	emis := make([][]int, d)
	for i := 0; i < d; i++ {
		for j := 0; j < bSizes[i]; j++ {
			emis[i] = append(emis[i], (i+j)%d)
		}
	}
	var prodWork, consWork float64
	for i := range prod {
		prodWork += prod[i]
		for _, tgt := range emis[i] {
			consWork += per[tgt]
		}
	}
	spec := sim.PipelineSpec{
		ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per,
		Strategy:              strat,
		QueueOverheadProducer: m.TriggeredQueueOverhead,
		QueueOverheadConsumer: m.PipelinedQueueOverhead,
	}
	if threads == 1 {
		return sim.PipelineSequential(spec, cfg), nil
	}
	split := sim.SplitThreads(threads, []float64{prodWork, consWork})
	spec.ProducerThreads, spec.ConsumerThreads = split[0], split[1]
	return sim.Pipeline(spec, cfg).Time, nil
}
