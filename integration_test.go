package dbs3_test

// Cross-module integration tests: the storage substrate feeding the parallel
// engine (generate -> partition -> store on the disk array -> load through
// the buffer pool -> execute), mirroring how DBS3 warms relations into
// memory before the measured runs.

import (
	"testing"

	"dbs3/internal/core"
	"dbs3/internal/lera"
	"dbs3/internal/partition"
	"dbs3/internal/relation"
	"dbs3/internal/storage"
	"dbs3/internal/workload"
)

func TestStorageToEngineRoundTrip(t *testing.T) {
	// Generate the paper's join pair and persist it on a 4-disk array.
	jdb, err := workload.NewJoinDB(2000, 200, 20, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := storage.NewCatalog(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*partition.Partitioned{jdb.A, jdb.B, jdb.Br} {
		if _, err := cat.Store(p); err != nil {
			t.Fatal(err)
		}
	}

	// Load back through the buffer pool (the "cached in main memory" warm
	// phase) and execute the join on the loaded copies.
	db := make(core.DB)
	for _, name := range []string{"A", "B", "Br"} {
		p, err := cat.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		db[name] = p
	}
	plan, err := jdb.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Execute(plan, db, core.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := jdb.VerifyJoinResult(res.Outputs["Res"]); err != nil {
		t.Error(err)
	}

	// The disk array must have been written and read.
	var reads, writes int
	for i := 0; i < cat.Array().Len(); i++ {
		r, w := cat.Array().Disk(i).Stats()
		reads += r
		writes += w
	}
	if writes == 0 || reads == 0 {
		t.Errorf("disk stats: %d reads, %d writes; expected real I/O", reads, writes)
	}
	// Re-loading hits the warm buffer pool.
	h0, m0 := cat.Pool().Stats()
	if _, err := cat.Load("A"); err != nil {
		t.Fatal(err)
	}
	h1, m1 := cat.Pool().Stats()
	if m1 != m0 {
		t.Errorf("warm reload missed the buffer pool (%d new misses)", m1-m0)
	}
	if h1 <= h0 {
		t.Error("warm reload produced no buffer hits")
	}
}

func TestStorageSmallBufferStillCorrect(t *testing.T) {
	// A buffer pool far smaller than the relation forces evictions; reads
	// must still be correct.
	r := relation.Wisconsin("W", 3000, 5)
	h, err := partition.NewHash(r.Schema, []string{"unique2"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Partition(r, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := storage.NewCatalog(2, 3) // 3 pages ~ 24 KB for a ~650 KB relation
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Store(p); err != nil {
		t.Fatal(err)
	}
	got, err := cat.Load("W")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Union().EqualMultiset(r) {
		t.Error("tiny buffer corrupted the relation")
	}
	_, misses := cat.Pool().Stats()
	if misses == 0 {
		t.Error("expected buffer misses with a 3-page pool")
	}
}
