package dbs3

import (
	"fmt"
	"sort"
	"testing"
)

// shardedCopies builds shards identical databases (same creation seeds) and
// restricts each to its own hash shard of wisc — exactly how cluster worker
// nodes are provisioned.
func shardedCopies(t *testing.T, card, shards int) []*Database {
	t.Helper()
	dbs := make([]*Database, shards)
	for i := range dbs {
		db := New()
		if err := db.CreateWisconsin("wisc", card, 4, "unique2", 42); err != nil {
			t.Fatal(err)
		}
		if err := db.ShardRelation("wisc", "unique2", i, shards); err != nil {
			t.Fatal(err)
		}
		dbs[i] = db
	}
	return dbs
}

// TestShardRelationUnionIsWholeRelation: the shards partition the relation —
// their cardinalities sum to the original, no tuple appears on two nodes,
// and the union of the shards' tuples is exactly the unsharded relation.
func TestShardRelationUnionIsWholeRelation(t *testing.T) {
	const card, shards = 900, 3
	dbs := shardedCopies(t, card, shards)

	var total int
	seen := make(map[string]int)
	for i, db := range dbs {
		n, err := db.Cardinality("wisc")
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 || n == card {
			t.Errorf("shard %d holds %d of %d tuples; hash split degenerate", i, n, card)
		}
		total += n
		rows, err := db.QueryAll("SELECT unique1, unique2 FROM wisc", nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows.Data {
			seen[fmt.Sprint(r)]++
		}
	}
	if total != card {
		t.Errorf("shard cardinalities sum to %d, want %d", total, card)
	}

	full := New()
	if err := full.CreateWisconsin("wisc", card, 4, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	rows, err := full.QueryAll("SELECT unique1, unique2 FROM wisc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != len(seen) {
		t.Fatalf("union has %d distinct tuples, full relation %d", len(seen), len(rows.Data))
	}
	for _, r := range rows.Data {
		if seen[fmt.Sprint(r)] != 1 {
			t.Fatalf("tuple %v appears on %d shards, want exactly 1", r, seen[fmt.Sprint(r)])
		}
	}
}

// TestShardRelationKeepsFragmentStructure: sharding thins fragments but
// never changes the degree of partitioning — the local parallel plan shape
// survives.
func TestShardRelationKeepsFragmentStructure(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 600, 4, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	before, err := db.Degree("wisc")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ShardRelation("wisc", "unique2", 1, 3); err != nil {
		t.Fatal(err)
	}
	after, err := db.Degree("wisc")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("degree changed %d -> %d across sharding", before, after)
	}
	sizes, err := db.FragmentSizes("wisc")
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != before {
		t.Errorf("fragment count %d, want %d", len(sizes), before)
	}
	var sum int
	for _, s := range sizes {
		sum += s
	}
	card, _ := db.Cardinality("wisc")
	if sum != card {
		t.Errorf("fragment sizes sum to %d, cardinality says %d", sum, card)
	}
}

// TestShardRelationQueriesSeeOnlyTheShard: a query after sharding runs over
// the shard alone, and a grouped aggregate's per-shard partials sum to the
// global counts — the property the coordinator's merge step builds on.
func TestShardRelationQueriesSeeOnlyTheShard(t *testing.T) {
	const card, shards = 900, 3
	dbs := shardedCopies(t, card, shards)

	merged := make(map[int64]int64)
	for _, db := range dbs {
		rows, err := db.QueryAll("SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows.Data {
			merged[r[0].(int64)] += r[1].(int64)
		}
	}
	keys := make([]int64, 0, len(merged))
	var sum int64
	for k, v := range merged {
		keys = append(keys, k)
		sum += v
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) != 10 || sum != card {
		t.Errorf("merged partial COUNTs: %d groups summing to %d, want 10 and %d", len(keys), sum, card)
	}
}

// TestShardRelationBounds: nonsense shard coordinates, unknown relations and
// unknown distribution columns are rejected.
func TestShardRelationBounds(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 100, 4, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	for name, call := range map[string]func() error{
		"zero shards":      func() error { return db.ShardRelation("wisc", "unique2", 0, 0) },
		"negative shards":  func() error { return db.ShardRelation("wisc", "unique2", 0, -1) },
		"negative shard":   func() error { return db.ShardRelation("wisc", "unique2", -1, 3) },
		"shard past count": func() error { return db.ShardRelation("wisc", "unique2", 3, 3) },
		"unknown relation": func() error { return db.ShardRelation("nope", "unique2", 0, 3) },
		"unknown column":   func() error { return db.ShardRelation("wisc", "nope", 0, 3) },
	} {
		if call() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
