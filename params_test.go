package dbs3

import (
	"strings"
	"sync"
	"testing"
)

// TestStmtPlaceholderBinding: a prepared `?` statement executes with
// per-call arguments, and the whole family of predicates shares one cached
// plan — the compile-once/execute-many shape a serving workload needs.
func TestStmtPlaceholderBinding(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 2000, 8, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("SELECT unique2 FROM wisc WHERE unique1 < ?", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := stmt.NumParams(); n != 1 {
		t.Fatalf("NumParams = %d, want 1", n)
	}
	for _, limit := range []int{10, 250, 0} {
		res, err := func() (*Result, error) {
			rows, err := stmt.Query(limit)
			if err != nil {
				return nil, err
			}
			return rows.All()
		}()
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if len(res.Data) != limit {
			t.Errorf("limit %d: %d rows", limit, len(res.Data))
		}
	}
	// Every execution above re-bound the same compiled plan: the one Prepare
	// miss is the only cache traffic.
	if hits, misses := db.PlanCacheStats(); hits != 0 || misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 0/1", hits, misses)
	}
	// Ad-hoc placeholder queries share that plan too.
	res, err := db.QueryAll("SELECT unique2 FROM wisc WHERE unique1 < ?", nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 5 {
		t.Errorf("ad-hoc placeholder query: %d rows, want 5", len(res.Data))
	}
	if hits, _ := db.PlanCacheStats(); hits != 1 {
		t.Errorf("ad-hoc placeholder query missed the cached plan template")
	}

	// Argument errors are caught before admission.
	if _, err := stmt.Query(); err == nil || !strings.Contains(err.Error(), "1 argument") {
		t.Errorf("missing argument: %v", err)
	}
	if _, err := stmt.Query(1, 2); err == nil || !strings.Contains(err.Error(), "1 argument") {
		t.Errorf("extra argument: %v", err)
	}
	if _, err := stmt.Query("ten"); err == nil || !strings.Contains(err.Error(), "wants INT") {
		t.Errorf("type mismatch: %v", err)
	}
	if _, err := stmt.Query(3.14); err == nil || !strings.Contains(err.Error(), "unsupported argument") {
		t.Errorf("unsupported kind: %v", err)
	}

	// String placeholders bind string arguments.
	srows, err := db.Query("SELECT unique1 FROM wisc WHERE stringu1 = ?", nil, "AAAAAAA")
	if err != nil {
		t.Fatal(err)
	}
	defer srows.Close()
	n := 0
	for srows.Next() {
		n++
	}
	if err := srows.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStmtConcurrentDistinctBindings: one Stmt, many goroutines, each with
// its own argument — the shared compiled plan must never leak one
// execution's binding into another's. Each worker's row count proves its own
// predicate ran.
func TestStmtConcurrentDistinctBindings(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 4000, 8, "unique2", 7); err != nil {
		t.Fatal(err)
	}
	db.Manager(ManagerConfig{Budget: 8})
	stmt, err := db.Prepare("SELECT unique2 FROM wisc WHERE unique1 < ?", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(limit int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				rows, err := stmt.Query(limit)
				if err != nil {
					t.Error(err)
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					t.Error(err)
					return
				}
				if n != limit {
					t.Errorf("binding %d returned %d rows", limit, n)
					return
				}
			}
		}(w * 100)
	}
	wg.Wait()
}
