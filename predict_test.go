package dbs3

import "testing"

func TestPredictIdealJoinShapes(t *testing.T) {
	// Skew hurts Random on the triggered join.
	flat, err := PredictIdealJoin(100_000, 10_000, 200, 10, 0, "random")
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := PredictIdealJoin(100_000, 10_000, 200, 10, 1, "random")
	if err != nil {
		t.Fatal(err)
	}
	if skewed < flat*1.5 {
		t.Errorf("Zipf 1 Random (%v) should be much slower than unskewed (%v)", skewed, flat)
	}
	// LPT rescues it.
	lpt, err := PredictIdealJoin(100_000, 10_000, 200, 10, 1, "lpt")
	if err != nil {
		t.Fatal(err)
	}
	if lpt > skewed {
		t.Errorf("LPT (%v) should beat Random (%v) under skew", lpt, skewed)
	}
}

func TestPredictAssocJoinInsensitiveToSkew(t *testing.T) {
	flat, err := PredictAssocJoin(100_000, 10_000, 200, 10, 0, "random")
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := PredictAssocJoin(100_000, 10_000, 200, 10, 1, "random")
	if err != nil {
		t.Fatal(err)
	}
	if dev := skewed/flat - 1; dev > 0.05 {
		t.Errorf("pipelined join should absorb skew: %v vs %v (%.1f%%)", skewed, flat, dev*100)
	}
}

func TestPredictSpeedup(t *testing.T) {
	seq, err := PredictAssocJoin(200_000, 20_000, 200, 1, 0, "random")
	if err != nil {
		t.Fatal(err)
	}
	par, err := PredictAssocJoin(200_000, 20_000, 200, 70, 0, "random")
	if err != nil {
		t.Fatal(err)
	}
	if s := seq / par; s < 55 {
		t.Errorf("70-thread speed-up = %v, want near the paper's >60", s)
	}
}

func TestPredictValidation(t *testing.T) {
	if _, err := PredictIdealJoin(0, 1, 1, 1, 0, "random"); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := PredictIdealJoin(10, 10, 2, 1, 0, "bogus"); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := PredictAssocJoin(10, 10, 2, 0, 0, "random"); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := PredictAssocJoin(10, 10, 2, 1, 0, "bogus"); err == nil {
		t.Error("bad strategy accepted")
	}
}
