// Package dbs3 is a Go reproduction of DBS3's adaptive parallel query
// execution model (Bouganim, Dageville, Valduriez: "Adaptive Parallel Query
// Execution in DBS3", EDBT 1996 / INRIA RR-2749).
//
// The library combines static hash partitioning of relations with dynamic
// allocation of worker threads to operations — the degree of parallelism is
// decoupled from the degree of partitioning — and balances load by letting
// every thread of an operation's pool consume activations from any of the
// operation's instance queues, preferring its own "main" queues and choosing
// among the others with a Random or LPT strategy.
//
// This package is the public facade: an in-memory database of partitioned
// relations, an ESQL-subset query interface, and execution knobs (threads,
// strategy, join algorithm). The building blocks live under internal/: the
// Lera-par plan layer, the parallel engine, the storage substrate, the
// analytical model and the virtual-time simulator that regenerates the
// paper's figures (see DESIGN.md and EXPERIMENTS.md).
//
// Quickstart:
//
//	db := dbs3.New()
//	db.CreateWisconsin("wisc", 10000, 16, "unique2", 42)
//	rows, err := db.Query("SELECT unique2 FROM wisc WHERE unique1 < 100", nil)
//
// # Concurrency & the QueryManager
//
// A Database is safe for concurrent use: queries may run while relations
// are being created, and many queries may run at once. By default each
// query schedules itself as if it owned the whole machine — fine for one
// query, wasteful for many. Installing a QueryManager turns the library
// into a concurrent query runtime with a machine-wide thread budget:
//
//	db.Manager(dbs3.ManagerConfig{Budget: 16})
//	rows, err := db.QueryContext(ctx, "SELECT ...", nil)
//
// The manager admits queries through a bounded queue, reserves each
// query's thread allocation against the shared budget before it starts,
// and — closing the paper's [Rahm93] loop — feeds each admitted query's
// scheduler a Utilization *measured* from the threads concurrent queries
// actually hold, so auto-chosen parallelism shrinks under load to favor
// multi-user throughput. QueryContext and ExplainContext propagate
// cancellation into the engine: a cancelled query drains its operation
// pools and frees its threads promptly.
package dbs3

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"dbs3/internal/core"
	"dbs3/internal/esql"
	"dbs3/internal/lera"
	"dbs3/internal/partition"
	"dbs3/internal/relation"
	dbruntime "dbs3/internal/runtime"
	"dbs3/internal/workload"
)

// Database is an in-memory database of statically partitioned relations.
// It is safe for concurrent use by multiple goroutines: relation creation
// takes a write lock, queries snapshot the catalog under a read lock.
type Database struct {
	mu       sync.RWMutex
	rels     core.DB
	resolver lera.MapResolver
	manager  *dbruntime.Manager
}

// New creates an empty database.
func New() *Database {
	return &Database{rels: make(core.DB), resolver: make(lera.MapResolver)}
}

// ManagerConfig sizes the query manager installed by Database.Manager.
type ManagerConfig struct {
	// Budget is the machine-wide thread budget shared by all concurrent
	// queries; 0 defaults to GOMAXPROCS.
	Budget int
	// MaxQueued bounds the admission queue; 0 defaults to 4*Budget.
	MaxQueued int
}

// Manager installs a QueryManager sized by cfg and returns it. Once
// installed, Query and QueryContext are admitted through it: concurrent
// queries share its thread budget and each one's scheduler sees the
// utilization measured from the others' allocated threads. Installing a
// new manager replaces the previous one for future queries.
func (db *Database) Manager(cfg ManagerConfig) *dbruntime.Manager {
	m := dbruntime.NewManager(dbruntime.Config{Budget: cfg.Budget, MaxQueued: cfg.MaxQueued})
	db.mu.Lock()
	db.manager = m
	db.mu.Unlock()
	return m
}

// Relations returns the registered relation names, sorted.
func (db *Database) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.rels))
	for name := range db.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Cardinality returns a relation's tuple count.
func (db *Database) Cardinality(name string) (int, error) {
	db.mu.RLock()
	p, ok := db.rels[name]
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("dbs3: no relation %q", name)
	}
	return p.Cardinality(), nil
}

// Degree returns a relation's degree of partitioning.
func (db *Database) Degree(name string) (int, error) {
	db.mu.RLock()
	p, ok := db.rels[name]
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("dbs3: no relation %q", name)
	}
	return p.Degree(), nil
}

// FragmentSizes returns a relation's per-fragment cardinalities — the
// distribution the skew experiments manipulate.
func (db *Database) FragmentSizes(name string) ([]int, error) {
	db.mu.RLock()
	p, ok := db.rels[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dbs3: no relation %q", name)
	}
	return p.FragmentSizes(), nil
}

func (db *Database) register(p *partition.Partitioned, part partition.Func) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.rels[p.Name]; dup {
		return fmt.Errorf("dbs3: relation %q already exists", p.Name)
	}
	db.rels[p.Name] = p
	db.resolver[p.Name] = lera.RelInfo{
		Schema:    p.Schema,
		Degree:    p.Degree(),
		FragSizes: p.FragmentSizes(),
		Part:      part,
	}
	return nil
}

// snapshot copies the catalog under the read lock so a query's compile and
// execution never race with concurrent relation creation. The copies share
// the (immutable) partitioned relations, so they are cheap.
func (db *Database) snapshot() (core.DB, lera.MapResolver, *dbruntime.Manager) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rels := make(core.DB, len(db.rels))
	for k, v := range db.rels {
		rels[k] = v
	}
	resolver := make(lera.MapResolver, len(db.resolver))
	for k, v := range db.resolver {
		resolver[k] = v
	}
	return rels, resolver, db.manager
}

// CreateWisconsin generates a Wisconsin benchmark relation [Bitton83] of the
// given cardinality, hash-partitioned on key into degree fragments.
func (db *Database) CreateWisconsin(name string, cardinality, degree int, key string, seed int64) error {
	r := relation.Wisconsin(name, cardinality, seed)
	h, err := partition.NewHash(r.Schema, []string{key}, degree)
	if err != nil {
		return err
	}
	p, err := partition.Partition(r, h, 1)
	if err != nil {
		return err
	}
	return db.register(p, h)
}

// CreateJoinPair generates the paper's experimental database (§5.4): three
// relations named <prefix>A, <prefix>B and <prefix>Br with schema (k INT,
// id INT, pad STRING). A holds aCard tuples with fragment cardinalities
// following Zipf(theta); B holds bCard tuples, uniform, co-partitioned with
// A on k; Br holds B's tuples placed on id instead, so joining it with A
// forces a run-time redistribution (the AssocJoin shape). bCard must be a
// multiple of degree.
func (db *Database) CreateJoinPair(prefix string, aCard, bCard, degree int, theta float64) error {
	jdb, err := workload.NewJoinDB(aCard, bCard, degree, theta)
	if err != nil {
		return err
	}
	res := jdb.Resolver()
	for _, item := range []struct {
		suffix string
		p      *partition.Partitioned
		orig   string
	}{
		{"A", jdb.A, "A"},
		{"B", jdb.B, "B"},
		{"Br", jdb.Br, "Br"},
	} {
		ri, err := res.RelInfo(item.orig)
		if err != nil {
			return err
		}
		p := item.p
		p.Name = prefix + item.suffix
		if err := db.register(p, ri.Part); err != nil {
			return err
		}
	}
	return nil
}

// Options tune one query execution. The zero value lets the scheduler pick
// everything (step 1 of Figure 5 chooses the thread count from the query's
// complexity).
type Options struct {
	// Threads fixes the query's total degree of parallelism (0 = auto).
	Threads int
	// Strategy is the queue consumption strategy: "auto" (default),
	// "random" or "lpt".
	Strategy string
	// JoinAlgo selects the join implementation: "hash" (default),
	// "nested-loop" or "temp-index".
	JoinAlgo string
	// Grain splits each triggered instance's work into partial triggers of
	// at most this many tuples (0 = one trigger per fragment, the paper's
	// model). Finer grains defeat skew on triggered operations — the
	// paper's §6 future work.
	Grain int
	// Utilization in [0, 1) tells the scheduler how busy the processors
	// already are; auto-chosen parallelism shrinks accordingly for
	// multi-user throughput [Rahm93].
	Utilization float64
}

func (o *Options) strategy() (core.StrategyKind, error) {
	if o == nil {
		return core.StrategyAuto, nil
	}
	switch o.Strategy {
	case "", "auto":
		return core.StrategyAuto, nil
	case "random":
		return core.StrategyRandom, nil
	case "lpt":
		return core.StrategyLPT, nil
	default:
		return 0, fmt.Errorf("dbs3: unknown strategy %q (auto, random, lpt)", o.Strategy)
	}
}

func (o *Options) joinAlgo() (lera.JoinAlgo, error) {
	if o == nil {
		return lera.HashJoin, nil
	}
	switch o.JoinAlgo {
	case "", "hash":
		return lera.HashJoin, nil
	case "nested-loop":
		return lera.NestedLoop, nil
	case "temp-index":
		return lera.TempIndex, nil
	default:
		return 0, fmt.Errorf("dbs3: unknown join algorithm %q (hash, nested-loop, temp-index)", o.JoinAlgo)
	}
}

// OperatorStats summarizes one operator's execution.
type OperatorStats struct {
	// Name is the plan node name (filter, join, store, ...).
	Name string
	// Threads is the pool size the scheduler allocated.
	Threads int
	// Strategy is the consumption strategy used.
	Strategy string
	// Instances is the operator's degree (one per fragment).
	Instances int
	// Activations, Emitted and SecondaryPicks count processed units of
	// work, produced tuples, and consumptions stolen from non-main queues.
	Activations, Emitted, SecondaryPicks int64
}

// Rows is a query result: plain Go values plus execution statistics.
type Rows struct {
	// Columns names the result columns.
	Columns []string
	// Data holds one row per slice; values are int64 or string.
	Data [][]any
	// Threads is the total degree of parallelism used.
	Threads int
	// Utilization is the processor utilization the scheduler saw: the
	// Options value, or — when a QueryManager is installed — the measured
	// concurrent load at admission if higher.
	Utilization float64
	// Operators reports per-operator scheduling statistics.
	Operators []OperatorStats
}

// Query compiles and executes one ESQL statement. The supported subset:
//
//	SELECT */cols/agg FROM rel
//	  [JOIN rel2 ON rel.col = rel2.col]
//	  [WHERE predicate]
//	  [GROUP BY cols]
func (db *Database) Query(sql string, opt *Options) (*Rows, error) {
	return db.QueryContext(context.Background(), sql, opt)
}

// QueryContext is Query under a context: cancelling ctx aborts the running
// operations, which drain and free their threads promptly, and the call
// returns ctx.Err(). When a QueryManager is installed the query is admitted
// through it and executes under the shared thread budget.
func (db *Database) QueryContext(ctx context.Context, sql string, opt *Options) (*Rows, error) {
	strat, err := opt.strategy()
	if err != nil {
		return nil, err
	}
	algo, err := opt.joinAlgo()
	if err != nil {
		return nil, err
	}
	rels, resolver, manager := db.snapshot()
	c := &esql.Compiler{Resolver: resolver, JoinAlgo: algo}
	plan, _, err := c.Compile(sql)
	if err != nil {
		return nil, err
	}
	var threads, grain int
	var utilization float64
	if opt != nil {
		threads, grain, utilization = opt.Threads, opt.Grain, opt.Utilization
	}
	copts := core.Options{
		Threads:      threads,
		Strategy:     strat,
		TriggerGrain: grain,
		Utilization:  utilization,
	}
	var res *core.Result
	if manager != nil {
		var qs dbruntime.QueryStats
		res, qs, err = manager.Execute(ctx, plan, rels, copts)
		utilization = qs.Utilization
	} else {
		res, err = core.ExecuteContext(ctx, plan, rels, copts)
	}
	if err != nil {
		return nil, err
	}
	out, err := res.Relation(esql.OutputName)
	if err != nil {
		return nil, err
	}
	rows := &Rows{Threads: res.Alloc.Total, Utilization: utilization}
	for i := 0; i < out.Schema.Len(); i++ {
		rows.Columns = append(rows.Columns, out.Schema.Column(i).Name)
	}
	for _, t := range out.Tuples {
		row := make([]any, len(t))
		for i, v := range t {
			if v.Kind() == relation.TInt {
				row[i] = v.AsInt()
			} else {
				row[i] = v.AsString()
			}
		}
		rows.Data = append(rows.Data, row)
	}
	for _, id := range plan.Order {
		st := res.Stats[id]
		rows.Operators = append(rows.Operators, OperatorStats{
			Name:           plan.Graph.Nodes[id].Name,
			Threads:        res.Alloc.Node[id],
			Strategy:       res.Alloc.Strategy[id].String(),
			Instances:      plan.Nodes[id].Degree,
			Activations:    st.Activations.Load(),
			Emitted:        st.Emitted.Load(),
			SecondaryPicks: st.SecondaryPicks.Load(),
		})
	}
	return rows, nil
}

// Explain compiles a statement and returns its parallel plan in Graphviz DOT
// form (the Lera-par "simple view" of Figure 1).
func (db *Database) Explain(sql string, opt *Options) (string, error) {
	return db.ExplainContext(context.Background(), sql, opt)
}

// ExplainContext is Explain under a context (compilation is quick; the
// context is checked once for early cancellation).
func (db *Database) ExplainContext(ctx context.Context, sql string, opt *Options) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	algo, err := opt.joinAlgo()
	if err != nil {
		return "", err
	}
	_, resolver, _ := db.snapshot()
	c := &esql.Compiler{Resolver: resolver, JoinAlgo: algo}
	_, g, err := c.Compile(sql)
	if err != nil {
		return "", err
	}
	return g.Dot(), nil
}
