// Package dbs3 is a Go reproduction of DBS3's adaptive parallel query
// execution model (Bouganim, Dageville, Valduriez: "Adaptive Parallel Query
// Execution in DBS3", EDBT 1996 / INRIA RR-2749).
//
// The library combines static hash partitioning of relations with dynamic
// allocation of worker threads to operations — the degree of parallelism is
// decoupled from the degree of partitioning — and balances load by letting
// every thread of an operation's pool consume activations from any of the
// operation's instance queues, preferring its own "main" queues and choosing
// among the others with a Random or LPT strategy.
//
// This package is the public facade: an in-memory database of partitioned
// relations, an ESQL-subset query interface, and execution knobs (threads,
// strategy, join algorithm). The building blocks live under internal/: the
// Lera-par plan layer, the parallel engine, the storage substrate, the
// analytical model and the virtual-time simulator that regenerates the
// paper's figures. DESIGN.md documents the layering and lifecycles.
//
// Quickstart:
//
//	db := dbs3.New()
//	db.CreateWisconsin("wisc", 10000, 16, "unique2", 42)
//	rows, err := db.Query("SELECT unique2 FROM wisc WHERE unique1 < 100", nil)
//	defer rows.Close()
//	for rows.Next() {
//		var u int64
//		rows.Scan(&u)
//	}
//
// # Prepared statements and streaming cursors
//
// Queries compile once and execute many times. Database.Prepare returns a
// *Stmt holding the bound parallel plan; Stmt.QueryContext reuses it against
// the current catalog, skipping lexing, parsing and planning entirely.
// WHERE comparisons accept `?` placeholders bound per execution
// (stmt.Query(42)), type-checked against the compared column, so one
// compiled plan serves a whole family of predicates. Ad-hoc
// Query/QueryContext calls hit an internal LRU plan cache keyed on
// SQL text + join algorithm, so a serving workload that repeats statements
// gets the same amortization transparently (PlanCacheStats, and the
// manager's Stats, expose the hit/miss counters).
//
// Results stream: QueryContext returns a *Rows cursor whose rows arrive as
// the engine's final store node produces them, through a bounded sink that
// applies backpressure to the producing threads. Rows.All materializes the
// remainder for callers that want the whole table (see also QueryAll).
//
// # Concurrency & the QueryManager
//
// A Database is safe for concurrent use: queries may run while relations
// are being created, and many queries may run at once. By default each
// query schedules itself as if it owned the whole machine — fine for one
// query, wasteful for many. Installing a QueryManager turns the library
// into a concurrent query runtime with a machine-wide thread budget:
//
//	db.Manager(dbs3.ManagerConfig{Budget: 16})
//	rows, err := db.QueryContext(ctx, "SELECT ...", nil)
//
// The manager admits queries through a bounded two-class queue (interactive
// before batch, with aging — see Options.Priority), reserves each query's
// thread allocation against the shared budget before it starts, and —
// closing the paper's [Rahm93] loop — feeds each admitted query's scheduler
// a Utilization *measured* from the threads concurrent queries actually
// hold, smoothed by an EWMA over recently completed queries. QueryContext
// propagates cancellation into the engine, and closing a cursor mid-result
// does the same: the query drains its operation pools and its threads are
// back in the budget when Close returns.
//
// Allocations stay adaptive while a query runs: at each chain boundary of a
// multi-chain plan (Options.Materialize compiles one), the reservation is
// renegotiated against freshly measured load — a finished chain's surplus
// threads return to the budget mid-flight, and a later chain can grow into
// budget freed by completed peers (Rows.ChainThreads traces the grants).
//
// The serve-mode front end (internal/server, `dbs3 serve`) exposes all of
// the above over HTTP: streamed NDJSON results, server-side prepared
// statements with placeholder arguments, per-request admission priorities,
// and disconnect-as-cancellation. DESIGN.md documents the wire protocol.
package dbs3

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dbs3/internal/core"
	"dbs3/internal/lera"
	"dbs3/internal/partition"
	"dbs3/internal/relation"
	dbruntime "dbs3/internal/runtime"
	"dbs3/internal/storage"
	"dbs3/internal/workload"
)

// Database is an in-memory database of statically partitioned relations.
// It is safe for concurrent use by multiple goroutines: relation creation
// takes a write lock, queries snapshot the catalog under a read lock.
type Database struct {
	mu       sync.RWMutex
	rels     core.DB
	resolver lera.MapResolver
	manager  *dbruntime.Manager

	// cache is the LRU plan cache behind Prepare and ad-hoc queries; epoch
	// is the catalog version, bumped on DDL so stale plans miss.
	cache *planCache
	epoch atomic.Uint64

	// poolMetrics aggregates spill buffer-pool hit/miss/resident counters
	// across every query the facade runs (see BufferPoolStats).
	poolMetrics storage.PoolMetrics
}

// New creates an empty database.
func New() *Database {
	return &Database{
		rels:     make(core.DB),
		resolver: make(lera.MapResolver),
		cache:    newPlanCache(planCacheCap),
	}
}

// ManagerConfig sizes the query manager installed by Database.Manager.
type ManagerConfig struct {
	// Budget is the machine-wide thread budget shared by all concurrent
	// queries; 0 defaults to GOMAXPROCS.
	Budget int
	// MaxQueued bounds the admission queue; 0 defaults to 4*Budget.
	MaxQueued int
	// BatchAging bounds batch starvation: after this many consecutive
	// interactive admissions while a batch query waited, the batch head
	// is served next as soon as its threads fit the free budget — and
	// after twice this many, unconditionally. 0 defaults to 4.
	BatchAging int
	// MemoryBudget is the machine-wide working-memory budget in bytes,
	// reserved next to threads at admission: each query is granted
	// min(cost-model estimate, Options.MemoryBudget ceiling, free budget),
	// blocking operators spill to disk beyond the grant, and a query whose
	// minimum grant does not fit waits in the queue instead of OOMing the
	// process. 0 disables memory admission.
	MemoryBudget int64
}

// Manager installs a QueryManager sized by cfg and returns it. Once
// installed, Query and QueryContext are admitted through it: concurrent
// queries share its thread budget and each one's scheduler sees the
// utilization measured from the others' allocated threads. Installing a
// new manager replaces the previous one for future queries.
func (db *Database) Manager(cfg ManagerConfig) *dbruntime.Manager {
	m := dbruntime.NewManager(dbruntime.Config{Budget: cfg.Budget, MaxQueued: cfg.MaxQueued, BatchAging: cfg.BatchAging, MemoryBudget: cfg.MemoryBudget})
	db.mu.Lock()
	db.manager = m
	db.mu.Unlock()
	return m
}

// BufferPoolStats reports the spill buffer-pool counters aggregated across
// every query this database ran under a memory budget: read-back page hits
// (including waits on a fetch already in flight), misses that went to disk,
// and the pages currently resident. All zero until a query spills.
func (db *Database) BufferPoolStats() (hits, misses, resident int64) {
	return db.poolMetrics.Snapshot()
}

// Relations returns the registered relation names, sorted.
func (db *Database) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.rels))
	for name := range db.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Cardinality returns a relation's tuple count.
func (db *Database) Cardinality(name string) (int, error) {
	db.mu.RLock()
	p, ok := db.rels[name]
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("dbs3: no relation %q", name)
	}
	return p.Cardinality(), nil
}

// Degree returns a relation's degree of partitioning.
func (db *Database) Degree(name string) (int, error) {
	db.mu.RLock()
	p, ok := db.rels[name]
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("dbs3: no relation %q", name)
	}
	return p.Degree(), nil
}

// FragmentSizes returns a relation's per-fragment cardinalities — the
// distribution the skew experiments manipulate.
func (db *Database) FragmentSizes(name string) ([]int, error) {
	db.mu.RLock()
	p, ok := db.rels[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dbs3: no relation %q", name)
	}
	return p.FragmentSizes(), nil
}

func (db *Database) register(p *partition.Partitioned, part partition.Func) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.rels[p.Name]; dup {
		return fmt.Errorf("dbs3: relation %q already exists", p.Name)
	}
	db.rels[p.Name] = p
	db.resolver[p.Name] = lera.RelInfo{
		Schema:    p.Schema,
		Degree:    p.Degree(),
		FragSizes: p.FragmentSizes(),
		Part:      part,
	}
	// DDL invalidates cached plans: they were bound against the old catalog.
	db.epoch.Add(1)
	return nil
}

// currentManager reads the installed manager under the read lock.
func (db *Database) currentManager() *dbruntime.Manager {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.manager
}

// snapshotRels copies the relation catalog (and reads the installed
// manager) under the read lock so an execution never races concurrent
// relation creation. The copy shares the immutable partitioned relations,
// so it is cheap — but it is still per-execution work, which is why the
// resolver (only needed at compile time) is snapshotted separately.
func (db *Database) snapshotRels() (core.DB, *dbruntime.Manager) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rels := make(core.DB, len(db.rels))
	for k, v := range db.rels {
		rels[k] = v
	}
	return rels, db.manager
}

// snapshotResolver copies the binding resolver under the read lock for a
// compile that must not race relation creation.
func (db *Database) snapshotResolver() lera.MapResolver {
	db.mu.RLock()
	defer db.mu.RUnlock()
	resolver := make(lera.MapResolver, len(db.resolver))
	for k, v := range db.resolver {
		resolver[k] = v
	}
	return resolver
}

// CreateWisconsin generates a Wisconsin benchmark relation [Bitton83] of the
// given cardinality, hash-partitioned on key into degree fragments.
func (db *Database) CreateWisconsin(name string, cardinality, degree int, key string, seed int64) error {
	r := relation.Wisconsin(name, cardinality, seed)
	h, err := partition.NewHash(r.Schema, []string{key}, degree)
	if err != nil {
		return err
	}
	p, err := partition.Partition(r, h, 1)
	if err != nil {
		return err
	}
	return db.register(p, h)
}

// CreateJoinPair generates the paper's experimental database (§5.4): three
// relations named <prefix>A, <prefix>B and <prefix>Br with schema (k INT,
// id INT, pad STRING). A holds aCard tuples with fragment cardinalities
// following Zipf(theta); B holds bCard tuples, uniform, co-partitioned with
// A on k; Br holds B's tuples placed on id instead, so joining it with A
// forces a run-time redistribution (the AssocJoin shape). bCard must be a
// multiple of degree.
func (db *Database) CreateJoinPair(prefix string, aCard, bCard, degree int, theta float64) error {
	jdb, err := workload.NewJoinDB(aCard, bCard, degree, theta)
	if err != nil {
		return err
	}
	res := jdb.Resolver()
	for _, item := range []struct {
		suffix string
		p      *partition.Partitioned
		orig   string
	}{
		{"A", jdb.A, "A"},
		{"B", jdb.B, "B"},
		{"Br", jdb.Br, "Br"},
	} {
		ri, err := res.RelInfo(item.orig)
		if err != nil {
			return err
		}
		p := item.p
		p.Name = prefix + item.suffix
		if err := db.register(p, ri.Part); err != nil {
			return err
		}
	}
	return nil
}

// Options tune one query execution. The zero value lets the scheduler pick
// everything (step 1 of Figure 5 chooses the thread count from the query's
// complexity).
type Options struct {
	// Threads fixes the query's total degree of parallelism (0 = auto).
	Threads int
	// Strategy is the queue consumption strategy: "auto" (default),
	// "random" or "lpt".
	Strategy string
	// JoinAlgo selects the join implementation: "hash" (default),
	// "nested-loop" or "temp-index".
	JoinAlgo string
	// Grain splits each triggered instance's work into partial triggers of
	// at most this many tuples (0 = one trigger per fragment, the paper's
	// model). Finer grains defeat skew on triggered operations — the
	// paper's §6 future work.
	Grain int
	// Utilization in [0, 1) tells the scheduler how busy the processors
	// already are; auto-chosen parallelism shrinks accordingly for
	// multi-user throughput [Rahm93].
	Utilization float64
	// Priority is the admission class under a QueryManager: "interactive"
	// (default) is served ahead of "batch" at the admission queue, with
	// aging so batch is never starved. Ignored without a manager.
	Priority string
	// Materialize inserts an explicit materialization point before the
	// aggregation/projection stage, splitting the plan into two pipeline
	// chains. The split costs an intermediate materialization but creates
	// the §3 chain boundary where a QueryManager renegotiates the query's
	// thread reservation mid-flight: the first chain's surplus threads
	// return to the shared budget before the second chain starts (or the
	// second grows into freed budget), visible as Readmissions /
	// ThreadsReturnedEarly in the manager Stats and as the per-chain trace
	// in Rows.ChainThreads. Plans with an explicit Threads setting keep
	// their allocation through both chains.
	Materialize bool
	// StreamBuffer is the bounded row-sink capacity between the engine and
	// the Rows cursor (0 = a small default). Smaller values bound result
	// memory tighter and apply backpressure sooner; larger values decouple
	// producer and consumer more.
	StreamBuffer int
	// BatchGrain is the producer-side batch size of the engine's pipelined
	// data plane: pool threads deliver emitted tuples to downstream
	// activation queues in lumps of this many (one lock acquire and one
	// consumer wake per lump) instead of one queue operation per tuple.
	// 0 = the engine default (core.DefaultBatchGrain); 1 disables batching,
	// restoring the per-tuple protocol. Batching changes only the transport:
	// every tuple still arrives as its own activation, so per-operator
	// activation counts, consumption strategies and the paper's skew
	// overhead formula are unaffected (see DESIGN.md, "Batch grain vs
	// activation grain").
	//
	// Negative values are rejected at Prepare with an error — there is no
	// sensible meaning to clamp them to silently.
	BatchGrain int
	// MemoryBudget caps the query's blocking-operator working memory in
	// bytes: join build sides, aggregate group tables and stage stores
	// share the budget through an accountant and spill to disk (Grace
	// partitioning for joins, sorted runs for aggregates and stores) when
	// they exceed it, so results are identical either way. Under a
	// QueryManager with a machine-wide MemoryBudget this is a ceiling on
	// the admission grant; without one it bounds the query directly. 0 =
	// unlimited (never spill); negative values are rejected.
	MemoryBudget int64
	// SpillDir is the directory for spill temp files ("" = os.TempDir()).
	// Files are created unlinked-on-close and removed on every exit path,
	// including cancellation.
	SpillDir string
	// NoVectorize forces the per-tuple operator path: activation batches
	// are unpacked into individual OnTuple calls even for operators with a
	// vectorized OnBatch implementation — the paper's original processing
	// model, kept as an ablation/debugging switch (the Grain1 hot-path
	// benchmarks use it as the per-tuple baseline). Results and per-operator
	// statistics are identical either way; only throughput differs.
	NoVectorize bool
}

// validate rejects option values with no meaningful interpretation. Named
// enum fields have their own accessors (strategy, joinAlgo, priority); this
// covers the numeric knobs where a silent clamp would hide a caller bug.
func (o *Options) validate() error {
	if o == nil {
		return nil
	}
	if o.BatchGrain < 0 {
		return fmt.Errorf("dbs3: BatchGrain %d is negative (0 = engine default, 1 = per-tuple pushes)", o.BatchGrain)
	}
	if o.MemoryBudget < 0 {
		return fmt.Errorf("dbs3: MemoryBudget %d is negative (0 = unlimited)", o.MemoryBudget)
	}
	return nil
}

func (o *Options) strategy() (core.StrategyKind, error) {
	if o == nil {
		return core.StrategyAuto, nil
	}
	switch o.Strategy {
	case "", "auto":
		return core.StrategyAuto, nil
	case "random":
		return core.StrategyRandom, nil
	case "lpt":
		return core.StrategyLPT, nil
	default:
		return 0, fmt.Errorf("dbs3: unknown strategy %q (auto, random, lpt)", o.Strategy)
	}
}

func (o *Options) joinAlgo() (lera.JoinAlgo, error) {
	if o == nil {
		return lera.HashJoin, nil
	}
	switch o.JoinAlgo {
	case "", "hash":
		return lera.HashJoin, nil
	case "nested-loop":
		return lera.NestedLoop, nil
	case "temp-index":
		return lera.TempIndex, nil
	default:
		return 0, fmt.Errorf("dbs3: unknown join algorithm %q (hash, nested-loop, temp-index)", o.JoinAlgo)
	}
}

func (o *Options) priority() (dbruntime.Priority, error) {
	if o == nil {
		return dbruntime.PriorityInteractive, nil
	}
	switch o.Priority {
	case "", "interactive":
		return dbruntime.PriorityInteractive, nil
	case "batch":
		return dbruntime.PriorityBatch, nil
	default:
		return 0, fmt.Errorf("dbs3: unknown priority %q (interactive, batch)", o.Priority)
	}
}

// OperatorStats summarizes one operator's execution. The JSON tags are the
// serve-mode wire form (the footer of a streamed result).
type OperatorStats struct {
	// Name is the plan node name (filter, join, store, ...).
	Name string `json:"name"`
	// Threads is the pool size the scheduler allocated.
	Threads int `json:"threads"`
	// Strategy is the consumption strategy used.
	Strategy string `json:"strategy"`
	// Instances is the operator's degree (one per fragment).
	Instances int `json:"instances"`
	// Activations, Emitted and SecondaryPicks count processed units of
	// work, produced tuples, and consumptions stolen from non-main queues.
	Activations    int64 `json:"activations"`
	Emitted        int64 `json:"emitted"`
	SecondaryPicks int64 `json:"secondaryPicks"`
	// SpilledBytes and SpillPasses record the operator's larger-than-memory
	// activity under a memory budget: bytes written to spill runs and
	// partition/merge passes taken. Zero (and omitted on the wire) for
	// operators that fit their grant.
	SpilledBytes int64 `json:"spilledBytes,omitempty"`
	SpillPasses  int64 `json:"spillPasses,omitempty"`
}

// Query compiles (or reuses a cached plan for) and executes one ESQL
// statement with a background context, returning a streaming cursor. The
// supported subset:
//
//	SELECT */cols/agg FROM rel
//	  [JOIN rel2 ON rel.col = rel2.col]
//	  [WHERE predicate]
//	  [GROUP BY cols]
//
// WHERE comparisons may use `?` placeholders instead of literals; args
// supplies their values in order (integers or strings, type-checked against
// the compared column). Close the returned cursor (or drain it) — an
// abandoned open cursor pins its query's threads on sink backpressure.
func (db *Database) Query(sql string, opt *Options, args ...any) (*Rows, error) {
	//dbs3lint:ignore ctxflow documented ctx-less convenience shim over QueryContext
	return db.QueryContext(context.Background(), sql, opt, args...)
}

// QueryContext executes one ESQL statement under a context and returns a
// streaming cursor: rows arrive through Rows.Next as the engine produces
// them, before the result is complete. Cancelling ctx — or closing the
// cursor — aborts the running operations, which drain and free their
// threads promptly. When a QueryManager is installed the query is admitted
// through it (under Options.Priority) and executes under the shared thread
// budget; the reservation returns to the budget the moment the execution
// ends, including a mid-result Close.
//
// Compilation goes through the database's LRU plan cache, so a repeated
// statement (same SQL and join algorithm) skips lexing, parsing and
// planning; use Prepare to hold the compiled plan explicitly. Placeholder
// statements cache once and re-bind per call: "... WHERE a < ?" executed
// with different args is one cached plan, not many.
func (db *Database) QueryContext(ctx context.Context, sql string, opt *Options, args ...any) (*Rows, error) {
	stmt, err := db.Prepare(sql, opt)
	if err != nil {
		return nil, err
	}
	return stmt.QueryContext(ctx, args...)
}

// QueryAll is the materialized convenience path — the pre-cursor API shape:
// it runs QueryContext and drains the cursor into a Result. Prefer the
// cursor for large results; QueryAll holds the whole table in memory.
func (db *Database) QueryAll(sql string, opt *Options, args ...any) (*Result, error) {
	//dbs3lint:ignore ctxflow documented ctx-less convenience shim over QueryAllContext
	return db.QueryAllContext(context.Background(), sql, opt, args...)
}

// QueryAllContext is QueryAll under a context.
func (db *Database) QueryAllContext(ctx context.Context, sql string, opt *Options, args ...any) (*Result, error) {
	rows, err := db.QueryContext(ctx, sql, opt, args...)
	if err != nil {
		return nil, err
	}
	return rows.All()
}

// Explain compiles a statement and returns its parallel plan in Graphviz DOT
// form (the Lera-par "simple view" of Figure 1), footed by the per-chain
// allocation split: each pipeline chain's nodes, its planned thread total
// and the desired total it renegotiates for at its materialization point
// under a QueryManager.
func (db *Database) Explain(sql string, opt *Options) (string, error) {
	//dbs3lint:ignore ctxflow documented ctx-less convenience shim over ExplainContext
	return db.ExplainContext(context.Background(), sql, opt)
}

// ExplainContext is Explain under a context (compilation is quick; the
// context is checked once for early cancellation). It shares the plan cache
// with Query and Prepare.
func (db *Database) ExplainContext(ctx context.Context, sql string, opt *Options) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	prep, err := db.prepare(sql, opt)
	if err != nil {
		return "", err
	}
	return prep.graph.Dot() + db.explainChains(prep.plan, opt), nil
}

// explainChains renders the per-chain allocation split as DOT comment lines:
// what the scheduler would allocate against the current catalog, and — for
// multi-chain plans — the per-chain desired totals a manager renegotiates at
// each materialization point. Allocation is advisory here; a plan that
// cannot be costed (for example against a relation dropped since compile)
// yields no footer rather than an error.
func (db *Database) explainChains(plan *lera.Plan, opt *Options) string {
	copts := core.Options{}
	if opt != nil {
		copts.Threads = opt.Threads
		copts.Utilization = opt.Utilization
	}
	rels, manager := db.snapshotRels()
	if manager != nil {
		copts.Processors = manager.Budget()
		copts.Machine = manager.Budget()
	}
	alloc, err := core.PlanAllocation(plan, rels, copts)
	if err != nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// allocation: %d threads over %d chain(s)\n", alloc.Total, len(plan.Chains))
	for ci, chain := range plan.Chains {
		names := make([]string, len(chain))
		for i, id := range chain {
			names[i] = plan.Graph.Nodes[id].Name
		}
		fmt.Fprintf(&b, "// chain %d: threads=%d want=%d nodes=%s\n", ci, alloc.Chain[ci], alloc.Want(ci), strings.Join(names, " -> "))
	}
	if alloc.MemEstimate > 0 {
		fmt.Fprintf(&b, "// memory estimate: %d bytes peak (per chain: %v); operators spill to disk beyond the admitted grant\n", alloc.MemEstimate, alloc.ChainMem)
	}
	if len(plan.Chains) > 1 {
		b.WriteString("// multi-chain plan: a QueryManager renegotiates the reservation at each chain boundary (want, throttled by live utilization)\n")
	}
	return b.String()
}
